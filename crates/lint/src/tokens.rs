//! A lossy-but-honest Rust tokenizer: enough lexical structure for the
//! lint rules to pattern-match real code without ever being fooled by
//! string literals, char literals, raw strings, or comments.
//!
//! The tokenizer is deliberately not a full lexer — it does not
//! classify keywords, parse numeric suffixes into types, or validate
//! literals. What it guarantees is the part that matters for static
//! analysis on text:
//!
//! - `"… .lock().unwrap() …"` inside a **string** is one [`Str`] token,
//!   never a method-call sequence;
//! - `// …` and nested `/* /* … */ */` comments become single comment
//!   tokens (kept, so allow-comments can be read from the same stream);
//! - raw strings `r"…"`, `r#"…"#` (any guard depth) and byte strings
//!   are single tokens with no escape processing;
//! - `'a'` is a [`Char`] literal while `'a` in `&'a str` is a
//!   [`Lifetime`] — the classic ambiguity resolved the same way rustc
//!   does (a closing quote decides);
//! - every token records the 1-based source line it starts on.
//!
//! [`Str`]: TokenKind::Str
//! [`Char`]: TokenKind::Char
//! [`Lifetime`]: TokenKind::Lifetime

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the leading quote is included.
    Lifetime,
    /// Char or byte literal (`'x'`, `b'\n'`), quotes included.
    Char,
    /// String or byte-string literal, quotes included.
    Str,
    /// Raw (byte-)string literal, guards included.
    RawStr,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// Operator / punctuation. Multi-char operators the rules care
    /// about (`==`, `!=`, `::`, `->`, `..`, `^=`) are single tokens.
    Punct,
    /// `// …` comment (doc comments included), newline excluded.
    LineComment,
    /// `/* … */` comment, nesting handled, delimiters included.
    BlockComment,
}

/// One token of source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators emitted as single [`TokenKind::Punct`]
/// tokens. Longest match wins; everything else is a one-char punct.
const MULTI_PUNCT: &[&str] = &[
    "==", "!=", "<=", ">=", "::", "->", "=>", "..", "^=", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Never fails: unrecognized bytes become one-char
/// [`TokenKind::Punct`] tokens and unterminated literals extend to end
/// of input, so the lint degrades gracefully on code that does not
/// compile yet.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                push(
                    &mut tokens,
                    src,
                    TokenKind::LineComment,
                    start,
                    cur.pos,
                    line,
                );
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(
                    &mut tokens,
                    src,
                    TokenKind::BlockComment,
                    start,
                    cur.pos,
                    line,
                );
            }
            b'r' | b'b' if raw_string_guards(&cur).is_some() => {
                let guards = raw_string_guards(&cur).unwrap_or(0);
                // Consume the prefix (r / br), the guards, and the
                // opening quote (`raw_string_guards` proved it exists).
                while let Some(c) = cur.peek(0) {
                    cur.bump();
                    if c == b'"' {
                        break;
                    }
                }
                loop {
                    match cur.bump() {
                        Some(b'"') if (0..guards).all(|i| cur.peek(i) == Some(b'#')) => {
                            for _ in 0..guards {
                                cur.bump();
                            }
                            break;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                push(&mut tokens, src, TokenKind::RawStr, start, cur.pos, line);
            }
            b'b' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                lex_string(&mut cur);
                push(&mut tokens, src, TokenKind::Str, start, cur.pos, line);
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                lex_char(&mut cur);
                push(&mut tokens, src, TokenKind::Char, start, cur.pos, line);
            }
            b'"' => {
                lex_string(&mut cur);
                push(&mut tokens, src, TokenKind::Str, start, cur.pos, line);
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                push(&mut tokens, src, kind, start, cur.pos, line);
            }
            b'r' if cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#match`.
                cur.bump();
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut tokens, src, TokenKind::Ident, start, cur.pos, line);
            }
            _ if is_ident_start(b) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut tokens, src, TokenKind::Ident, start, cur.pos, line);
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                push(&mut tokens, src, TokenKind::Num, start, cur.pos, line);
            }
            _ => {
                let two = &src.as_bytes()[cur.pos..(cur.pos + 2).min(src.len())];
                if MULTI_PUNCT.iter().any(|op| op.as_bytes() == two) {
                    cur.bump();
                    cur.bump();
                } else {
                    cur.bump();
                }
                push(&mut tokens, src, TokenKind::Punct, start, cur.pos, line);
            }
        }
    }
    tokens
}

fn push(
    tokens: &mut Vec<Token>,
    src: &str,
    kind: TokenKind,
    start: usize,
    end: usize,
    line: usize,
) {
    tokens.push(Token {
        kind,
        text: src[start..end].to_string(),
        line,
    });
}

/// If the cursor sits on a raw-string prefix (`r"`, `r#"`, `br##"`,
/// …), returns the number of `#` guards; otherwise `None`.
fn raw_string_guards(cur: &Cursor<'_>) -> Option<usize> {
    let mut i = 1;
    if cur.peek(0) == Some(b'b') {
        if cur.peek(1) != Some(b'r') {
            return None;
        }
        i = 2;
    }
    let mut guards = 0;
    while cur.peek(i) == Some(b'#') {
        guards += 1;
        i += 1;
    }
    (cur.peek(i) == Some(b'"')).then_some(guards)
}

fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'"') | None => break,
            Some(_) => {}
        }
    }
}

fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'\'') | None => break,
            Some(_) => {}
        }
    }
}

/// Disambiguates `'` between a char literal and a lifetime, consuming
/// the token either way.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // An escape right after the quote is always a char literal.
    if cur.peek(1) == Some(b'\\') {
        lex_char(cur);
        return TokenKind::Char;
    }
    // `'x'` → char; `'ident` with no closing quote → lifetime.
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut i = 2;
        while cur.peek(i).is_some_and(is_ident_continue) {
            i += 1;
        }
        if cur.peek(i) == Some(b'\'') {
            lex_char(cur);
            return TokenKind::Char;
        }
        for _ in 0..i {
            cur.bump();
        }
        return TokenKind::Lifetime;
    }
    // Degenerate (`'('`, unterminated, …): treat as a char literal.
    lex_char(cur);
    TokenKind::Char
}

fn lex_number(cur: &mut Cursor<'_>) {
    // `E` is a digit in hex literals, never an exponent marker there.
    let base_prefixed =
        cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'b' | b'o'));
    // Integer part (covers 0x/0b/0o digits and `_` separators).
    while cur
        .peek(0)
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
    {
        // Exponent sign: `1e-3` / `2.5E+8`.
        let c = cur.peek(0).unwrap_or(0);
        cur.bump();
        if !base_prefixed && (c == b'e' || c == b'E') && matches!(cur.peek(0), Some(b'+' | b'-')) {
            // Only a sign followed by a digit belongs to the literal
            // (`1e-3` yes, `x*1e - 3` cannot occur lexically).
            if cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                cur.bump();
            }
        }
    }
    // Fraction: a `.` followed by a digit (not `..` and not `.method()`).
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            let c = cur.peek(0).unwrap_or(0);
            cur.bump();
            if (c == b'e' || c == b'E')
                && matches!(cur.peek(0), Some(b'+' | b'-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        }
    } else if cur.peek(0) == Some(b'.')
        && cur.peek(1) != Some(b'.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        // Trailing-dot float `1.` (but neither `1..n` nor `1.powi`).
        cur.bump();
    }
}

/// Whether a [`TokenKind::Num`] token is a **float** literal: it has a
/// fraction, an exponent, or an explicit float suffix.
#[must_use]
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|b| b == b'e' || b == b'E')
}

/// Whether a float literal spells exactly zero (`0.0`, `0.`, `0e5`,
/// `0.000f64`). Comparing floats against literal zero is the one exact
/// comparison the `float-eq` rule accepts, mirroring clippy's
/// `float_cmp` carve-out.
#[must_use]
pub fn is_zero_float(text: &str) -> bool {
    let mantissa: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    !mantissa.is_empty() && mantissa.chars().all(|c| c == '0' || c == '.' || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_code_shaped_text() {
        let toks = kinds(r#"let s = "a.lock().unwrap()";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("lock")));
        // No Ident token named `lock` escaped the string.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "lock"));
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a".to_string()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2], (TokenKind::Ident, "b".to_string()));
    }

    #[test]
    fn block_comments_track_lines() {
        let toks = tokenize("/* one\ntwo\nthree */ after");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "after");
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x"###);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::RawStr).unwrap();
        assert!(raw.1.contains("quote \" inside"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "x".to_string()));
        // Unguarded and byte-raw forms too.
        assert!(kinds(r#"r"plain""#)[0].0 == TokenKind::RawStr);
        assert!(kinds(r##"br#"bytes"#"##)[0].0 == TokenKind::RawStr);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_chars_and_static_lifetime() {
        let toks = kinds(r"let c = '\''; let s: &'static str;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == r"'\''"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        assert_eq!(kinds("1.5")[0], (TokenKind::Num, "1.5".to_string()));
        assert_eq!(kinds("1e-3")[0], (TokenKind::Num, "1e-3".to_string()));
        assert_eq!(kinds("0x5eed")[0], (TokenKind::Num, "0x5eed".to_string()));
        // `1..4` is Num Punct(..) Num, not a malformed float.
        let toks = kinds("1..4");
        assert_eq!(toks[0], (TokenKind::Num, "1".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        assert_eq!(toks[2], (TokenKind::Num, "4".to_string()));
        // Method calls on integers stay separate tokens.
        let toks = kinds("2.pow(3)");
        assert_eq!(toks[0], (TokenKind::Num, "2".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "pow".to_string()));
    }

    #[test]
    fn float_literal_classification() {
        assert!(is_float_literal("1.5"));
        assert!(is_float_literal("1."));
        assert!(is_float_literal("1e9"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0x5eed"));
        assert!(is_zero_float("0.0"));
        assert!(is_zero_float("0."));
        assert!(is_zero_float("0_0.00"));
        assert!(!is_zero_float("0.5"));
        assert!(!is_zero_float("10.0"));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c ^ d ^= e :: f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "^", "^=", "::"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = tokenize("a\nb\n\nc // trailing\nd");
        let lines: Vec<(String, usize)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines[0], ("a".to_string(), 1));
        assert_eq!(lines[1], ("b".to_string(), 2));
        assert_eq!(lines[2], ("c".to_string(), 4));
        assert_eq!(lines[3], ("// trailing".to_string(), 4));
        assert_eq!(lines[4], ("d".to_string(), 5));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }
}
