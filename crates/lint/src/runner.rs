//! The workspace walker and report renderers.
//!
//! [`lint_workspace`] visits every `.rs` file of the repository —
//! first-party code only: `vendor/` (offline registry stand-ins),
//! `target/`, and the lint's own `fixtures/` corpus of deliberate
//! violations are skipped — and runs the full rule set over each.
//! Paths are reported workspace-relative with `/` separators so output
//! is identical across machines, and files are visited in sorted order
//! so output is identical across filesystems.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{check_fault_points, lint_source, Finding};

/// Directory names never descended into: VCS and build output,
/// `vendor/` (offline registry stand-ins, out-of-workspace by design —
/// see the root manifest — and not held to first-party invariants),
/// `fixtures/` (the lint's own corpus of deliberate violations), and
/// scenario run artifacts.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures", "runs", "ci-runs"];

/// Collects every first-party `.rs` file under `root`, workspace-
/// relative, sorted.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every first-party `.rs` file under `root`. Findings come back
/// sorted by (file, line, rule).
///
/// # Errors
///
/// Propagates filesystem errors; individual files that cannot be read
/// abort the run (a lint that silently skips files is worse than none).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(lint_source(&rel, &src));
        sources.push((rel, src));
    }
    // The fault-point rule is cross-file by nature: it reconciles every
    // `point!` call site against the one registry.
    findings.extend(check_fault_points(&sources));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Renders findings for humans: one `file:line: [rule] message` block
/// per finding with the fix hint indented, then a count.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    fix: {}\n",
            f.file, f.line, f.rule, f.message, f.hint
        ));
    }
    if findings.is_empty() {
        out.push_str("gridmtd lint: clean\n");
    } else {
        out.push_str(&format!(
            "gridmtd lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Renders findings as a deterministic JSON array (one object per
/// finding, keys in fixed order), for CI and tooling.
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"hint\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: "lock-unwrap",
            message: "a \"quoted\" message".to_string(),
            hint: "do the thing",
        }
    }

    #[test]
    fn human_rendering_counts() {
        let text = render_human(&[finding()]);
        assert!(text.contains("crates/x/src/a.rs:7: [lock-unwrap]"));
        assert!(text.contains("1 finding\n"));
        assert!(render_human(&[]).contains("clean"));
    }

    #[test]
    fn json_rendering_escapes_and_is_valid_shape() {
        let text = render_json(&[finding()]);
        assert!(text.contains("\"file\":\"crates/x/src/a.rs\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
