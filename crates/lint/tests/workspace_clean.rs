//! The lint's own dogfood gate: the workspace must lint clean. This is
//! the same check CI runs via `gridmtd lint`, kept as a test so a plain
//! `cargo test` catches new violations before a finding ever reaches
//! the pipeline.

use std::path::Path;

use gridmtd_lint::{lint_workspace, render_human, workspace_files};

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_lints_clean() {
    let findings = lint_workspace(repo_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace has lint findings; fix or allow() them with a reason:\n{}",
        render_human(&findings)
    );
}

#[test]
fn walker_sees_the_real_workspace() {
    // Guards against a silently-green gate: if path filtering ever eats
    // the workspace (wrong root, overzealous SKIP_DIRS), the clean
    // assertion above would pass vacuously.
    let files = workspace_files(repo_root()).expect("walk workspace");
    let names: Vec<String> = files
        .iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    assert!(files.len() > 50, "only {} files seen", files.len());
    for expected in [
        "crates/core/src/seedstream.rs",
        "crates/serve/src/server.rs",
        "crates/lint/src/rules.rs",
        "src/bin/gridmtd.rs",
    ] {
        assert!(
            names.iter().any(|n| n.ends_with(expected)),
            "walker missed {expected}"
        );
    }
    // And the deliberate-violation corpus must stay out of the walk.
    assert!(
        !names.iter().any(|n| n.contains("/fixtures/")),
        "walker descended into fixtures/"
    );
}
