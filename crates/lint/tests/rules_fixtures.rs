//! Per-rule fixture tests: each known-bad file under `fixtures/` is
//! linted under a *production* fake path (the fixtures' real path
//! contains `tests`, which would exempt everything) and must fire at
//! exactly the asserted lines — no more, no fewer — with the allow
//! escape demonstrably suppressing one occurrence.

use gridmtd_lint::lint_source;

/// Lints `fixtures/<name>` as if it lived at `fake_path`.
fn fired(name: &str, fake_path: &str) -> Vec<(String, usize)> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_source(fake_path, &src)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

fn expect(name: &str, fake_path: &str, want: &[(&str, usize)]) {
    let got = fired(name, fake_path);
    let want: Vec<(String, usize)> = want.iter().map(|&(r, l)| (r.to_string(), l)).collect();
    assert_eq!(got, want, "fixture {name} under {fake_path}");
}

#[test]
fn lock_unwrap_fixture() {
    // Fires on `.unwrap()` and `.expect(...)`; the allow on the line
    // above and the `#[cfg(test)]` block both suppress.
    expect(
        "lock_unwrap.rs",
        "crates/x/src/worker.rs",
        &[("lock-unwrap", 6), ("lock-unwrap", 10)],
    );
}

#[test]
fn raw_seed_mix_fixture() {
    // `^`, `.wrapping_add`, `.wrapping_mul` near seed-named bindings;
    // `mask ^ t` (no seed name in the statement) stays clean.
    expect(
        "raw_seed_mix.rs",
        "crates/x/src/streams.rs",
        &[
            ("raw-seed-mix", 5),
            ("raw-seed-mix", 9),
            ("raw-seed-mix", 13),
        ],
    );
    // The one module allowed to do raw seed arithmetic.
    expect("raw_seed_mix.rs", "crates/core/src/seedstream.rs", &[]);
}

#[test]
fn unordered_iter_fixture() {
    // A `for` loop, an `.keys()` chain, and a `.drain()` on hash
    // containers; keyed `.get` lookups in a slice-ordered loop stay
    // clean.
    expect(
        "unordered_iter.rs",
        "crates/x/src/report.rs",
        &[
            ("unordered-iter", 7),
            ("unordered-iter", 14),
            ("unordered-iter", 18),
        ],
    );
}

#[test]
fn float_eq_fixture() {
    // `==` / `!=` against non-zero float literals, including a negated
    // one; the `!= 0.0` sparsity idiom stays clean.
    expect(
        "float_eq.rs",
        "crates/x/src/rank.rs",
        &[("float-eq", 5), ("float-eq", 9), ("float-eq", 17)],
    );
}

#[test]
fn wallclock_fixture() {
    // `Instant::now` and `SystemTime` in a result-producing crate; the
    // measurement crates are exempt wholesale.
    expect(
        "wallclock.rs",
        "crates/x/src/pipeline.rs",
        &[("wallclock", 5), ("wallclock", 10)],
    );
    expect("wallclock.rs", "crates/bench/src/bin/timer.rs", &[]);
    expect("wallclock.rs", "crates/serve/src/loadtest.rs", &[]);
}

#[test]
fn thread_override_fixture() {
    // Calls fire; the definition (`fn set_thread_override`) and the CLI
    // entry point are exempt.
    expect(
        "thread_override.rs",
        "crates/x/src/pool.rs",
        &[("thread-override", 7)],
    );
    expect("thread_override.rs", "src/bin/gridmtd.rs", &[]);
}

#[test]
fn bad_allow_fixture() {
    // A reason-less allow is a finding AND fails to suppress its
    // target; an allow naming an unknown rule is a finding too.
    expect(
        "bad_allow.rs",
        "crates/x/src/helper.rs",
        &[("bad-allow", 5), ("lock-unwrap", 6), ("bad-allow", 10)],
    );
}

#[test]
fn fixtures_under_test_paths_are_exempt() {
    // The same deliberate violations vanish when the file genuinely
    // lives in an integration-test tree.
    expect("lock_unwrap.rs", "crates/x/tests/worker.rs", &[]);
    expect("float_eq.rs", "crates/x/tests/rank.rs", &[]);
}
