//! Deliberate `bad-allow` violations: escapes must carry a reason, and
//! a reason-less escape must not suppress the finding it targets.

fn reasonless(m: &std::sync::Mutex<u8>) -> u8 {
    // gridmtd-lint: allow(lock-unwrap)
    *m.lock().unwrap()
}

fn unknown_rule() {
    // gridmtd-lint: allow(no-such-rule) -- the rule name is wrong
}
