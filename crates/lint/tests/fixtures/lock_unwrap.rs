//! Deliberate `lock-unwrap` violations. The driver asserts the exact
//! fire lines, so any edit here must update `rules_fixtures.rs`.
use std::sync::Mutex;

fn read_counter(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn read_counter_expect(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}

fn read_counter_allowed(m: &Mutex<u32>) -> u32 {
    // gridmtd-lint: allow(lock-unwrap) -- fixture: demonstrates suppression
    *m.lock().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_locks() {
        let m = Mutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
