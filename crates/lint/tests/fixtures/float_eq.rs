//! Deliberate `float-eq` violations. The driver asserts the exact fire
//! lines, so any edit here must update `rules_fixtures.rs`.

fn is_half(x: f64) -> bool {
    x == 0.5
}

fn is_not_pi(x: f64) -> bool {
    x != 3.14
}

fn sparsity_check_is_fine(x: f64) -> bool {
    x != 0.0
}

fn negative_literal(x: f64) -> bool {
    x == -1.5
}

fn is_half_allowed(x: f64) -> bool {
    // gridmtd-lint: allow(float-eq) -- fixture: demonstrates suppression
    x == 0.5
}
