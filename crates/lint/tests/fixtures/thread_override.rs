//! Deliberate `thread-override` violations. The driver asserts the
//! exact fire lines, so any edit here must update `rules_fixtures.rs`.

pub fn set_thread_override(_n: usize) {}

fn configure_pool() {
    set_thread_override(8);
}

fn configure_pool_allowed() {
    // gridmtd-lint: allow(thread-override) -- fixture: demonstrates suppression
    set_thread_override(4);
}
