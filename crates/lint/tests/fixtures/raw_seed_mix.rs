//! Deliberate `raw-seed-mix` violations. The driver asserts the exact
//! fire lines, so any edit here must update `rules_fixtures.rs`.

fn derive_xor(seed: u64, t: u64) -> u64 {
    seed ^ t
}

fn derive_add(seed: u64) -> u64 {
    seed.wrapping_add(0xfeed)
}

fn derive_mul(base_seed: u64, t: u64) -> u64 {
    base_seed.wrapping_mul(t)
}

fn xor_without_a_seed(mask: u64, t: u64) -> u64 {
    mask ^ t
}

fn derive_allowed(seed: u64, t: u64) -> u64 {
    // gridmtd-lint: allow(raw-seed-mix) -- fixture: demonstrates suppression
    seed ^ t
}
