//! Deliberate `wallclock` violations. The driver asserts the exact fire
//! lines, so any edit here must update `rules_fixtures.rs`.

fn elapsed_ns() -> u128 {
    let started = std::time::Instant::now();
    started.elapsed().as_nanos()
}

fn epoch_secs() -> u64 {
    let now = std::time::SystemTime::now();
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}

fn allowed_stamp_ns() -> u128 {
    // gridmtd-lint: allow(wallclock) -- fixture: demonstrates suppression
    std::time::Instant::now().elapsed().as_nanos()
}
