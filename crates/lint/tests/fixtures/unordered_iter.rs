//! Deliberate `unordered-iter` violations. The driver asserts the exact
//! fire lines, so any edit here must update `rules_fixtures.rs`.
use std::collections::{HashMap, HashSet};

fn sum_values(scores: &HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in scores.iter() {
        total += v;
    }
    total
}

fn collect_keys(scores: &HashMap<String, f64>) -> Vec<String> {
    scores.keys().cloned().collect()
}

fn drain_set(mut pending: HashSet<u64>) -> Vec<u64> {
    pending.drain().collect()
}

fn ordered_lookup_is_fine(scores: &HashMap<String, f64>, names: &[String]) -> Vec<f64> {
    names.iter().filter_map(|n| scores.get(n).copied()).collect()
}

fn sorted_keys_allowed(scores: &HashMap<String, f64>) -> Vec<String> {
    // gridmtd-lint: allow(unordered-iter) -- fixture: demonstrates suppression
    let mut keys: Vec<String> = scores.keys().cloned().collect();
    keys.sort();
    keys
}
