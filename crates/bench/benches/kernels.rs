//! Criterion benches for the numerical kernels underlying every
//! experiment: subspace angles (Björck–Golub), DC power flow, WLS + BDD
//! residual evaluation and closed-form attack scoring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use gridmtd_core::spa;
use gridmtd_estimation::{BadDataDetector, NoiseModel, StateEstimator};
use gridmtd_powergrid::{cases, dcpf};

fn bench_gamma(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma");
    for (name, net) in [("case14", cases::case14()), ("case30", cases::case30())] {
        let x0 = net.nominal_reactances();
        let h0 = net.measurement_matrix(&x0).unwrap();
        let mut x1 = x0.clone();
        for (k, l) in net.dfacts_branches().into_iter().enumerate() {
            x1[l] *= if k % 2 == 0 { 1.3 } else { 0.7 };
        }
        let h1 = net.measurement_matrix(&x1).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| spa::gamma(black_box(&h0), black_box(&h1)).unwrap())
        });
    }
    group.finish();
}

fn bench_dcpf(c: &mut Criterion) {
    let mut group = c.benchmark_group("dc_power_flow");
    for (name, net, dispatch) in [
        (
            "case14",
            cases::case14(),
            Some(vec![150.0, 40.0, 20.0, 30.0, 19.0]),
        ),
        (
            "case30",
            cases::case30(),
            Some(vec![60.0, 55.0, 25.0, 20.0, 15.0, 14.2]),
        ),
        ("case57", cases::case57(), None),
        ("case118", cases::case118(), None),
        ("case300", cases::case300(), None),
    ] {
        // Synthetic scale cases: split the load evenly across units (the
        // power flow does not need a merit-order dispatch).
        let dispatch = dispatch.unwrap_or_else(|| {
            let share = net.total_load() / net.n_gens() as f64;
            vec![share; net.n_gens()]
        });
        let x = net.nominal_reactances();
        group.bench_function(name, |b| {
            b.iter(|| dcpf::solve_dispatch(black_box(&net), &x, &dispatch).unwrap())
        });
    }
    group.finish();
}

fn bench_sparse_refactor(c: &mut Criterion) {
    // The MTD loop shape: the topology is fixed, only reactance values
    // drift. With a warm `PfContext` each solve is a numeric-only
    // refactorization (the symbolic factorization is cached), which is
    // the amortized per-perturbation cost inside `select_mtd` objective
    // evaluations, Monte-Carlo trials and timeline hours.
    let net = cases::case118();
    let share = net.total_load() / net.n_gens() as f64;
    let dispatch = vec![share; net.n_gens()];
    let x0 = net.nominal_reactances();
    let dfacts = net.dfacts_branches();
    let xs: Vec<Vec<f64>> = (0..8)
        .map(|k| {
            let mut x = x0.clone();
            for (j, &l) in dfacts.iter().enumerate() {
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                x[l] *= 1.0 + sign * 0.01 * (k as f64 + 1.0);
            }
            x
        })
        .collect();
    let mut ctx = gridmtd_powergrid::PfContext::new();
    // Prime the cache so the measurement is refactor + solve only.
    dcpf::solve_dispatch_with(&net, &x0, &dispatch, &mut ctx).unwrap();
    let mut i = 0usize;
    c.bench_function("sparse_refactor/case118", |b| {
        b.iter(|| {
            let x = &xs[i % xs.len()];
            i += 1;
            dcpf::solve_dispatch_with(black_box(&net), x, &dispatch, &mut ctx).unwrap()
        })
    });
}

fn bench_measurement_matrix(c: &mut Criterion) {
    let net = cases::case30();
    let x = net.nominal_reactances();
    c.bench_function("measurement_matrix/case30", |b| {
        b.iter(|| net.measurement_matrix(black_box(&x)).unwrap())
    });
}

fn bench_bdd(c: &mut Criterion) {
    let net = cases::case14();
    let x = net.nominal_reactances();
    let h = net.measurement_matrix(&x).unwrap();
    let noise = NoiseModel::uniform(h.rows(), 0.1);
    let est = StateEstimator::new(h, &noise).unwrap();
    let bdd = BadDataDetector::new(est, 5e-4);
    let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
    let z = pf.measurement_vector();

    c.bench_function("bdd_residual_test/case14", |b| {
        b.iter(|| bdd.test(black_box(&z)).unwrap())
    });

    // Estimator construction (per-MTD cost in sweeps).
    let h2 = net.measurement_matrix(&x).unwrap();
    c.bench_function("estimator_build/case14", |b| {
        b.iter_batched(
            || h2.clone(),
            |h| StateEstimator::new(h, &noise).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_detection_probability(c: &mut Criterion) {
    let net = cases::case14();
    let x = net.nominal_reactances();
    let h = net.measurement_matrix(&x).unwrap();
    let mut x1 = x.clone();
    for (k, l) in net.dfacts_branches().into_iter().enumerate() {
        x1[l] *= if k % 2 == 0 { 1.4 } else { 0.6 };
    }
    let h1 = net.measurement_matrix(&x1).unwrap();
    let noise = NoiseModel::uniform(h1.rows(), 0.1);
    let est = StateEstimator::new(h1, &noise).unwrap();
    let bdd = BadDataDetector::new(est, 5e-4);
    let c_vec: Vec<f64> = (0..h.cols()).map(|i| 0.002 * (i as f64 + 1.0)).collect();
    let a = h.matvec(&c_vec).unwrap();
    c.bench_function("analytic_detection_probability/case14", |b| {
        b.iter(|| bdd.detection_probability(black_box(&a)).unwrap())
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gamma, bench_dcpf, bench_sparse_refactor, bench_measurement_matrix, bench_bdd, bench_detection_probability
}
criterion_main!(kernels);
