//! Criterion benches for the experiment-level pipelines: DC-OPF solves,
//! full effectiveness evaluations (the inner loop of Figs. 6–9) and one
//! SPA-constrained selection step (problem (4)).
//!
//! `dc_opf/*` measures the **in-loop** workload — a persistent
//! [`OpfContext`] whose LP warm-starts from the previous basis while the
//! reactances drift, exactly how `select_mtd`'s Nelder–Mead trajectory
//! consumes the solver. `dc_opf_cold/*` keeps the from-scratch reference
//! visible.
//!
//! `session_select_warm/case118` vs `select_mtd_with/case118` pins the
//! session-layer contract: routing a selection through a warm
//! [`MtdSession`] must not be slower than hand-threading the hoisted
//! `H(x_pre)` + QR basis into `select_mtd_with` (the CI gate holds the
//! ratio at ≤ 1.05×; on the sparse path the session is strictly faster
//! because its primed power-flow prototype amortizes the symbolic
//! factorization the hand-threaded path re-runs per context).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gridmtd_core::{effectiveness, selection, spa, MtdConfig, MtdSession, SelectionMethod};
use gridmtd_opf::{solve_opf, solve_opf_with, OpfContext, OpfOptions};
use gridmtd_powergrid::{cases, Network};

/// A short cycle of gently drifting reactance vectors, mimicking one
/// optimizer trajectory.
fn drift_cycle(net: &Network) -> Vec<Vec<f64>> {
    let x0 = net.nominal_reactances();
    (0..8)
        .map(|k| {
            let mut x = x0.clone();
            for (j, l) in net.dfacts_branches().into_iter().enumerate() {
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                x[l] *= 1.0 + sign * 0.004 * ((k % 4) as f64 + 1.0);
            }
            x
        })
        .collect()
}

fn bench_opf(c: &mut Criterion) {
    let opts = OpfOptions::default();

    let mut group = c.benchmark_group("dc_opf");
    for (name, net) in [
        ("case4", cases::case4()),
        ("case14", cases::case14()),
        ("case30", cases::case30()),
        ("case57", cases::case57()),
        ("case118", cases::case118()),
    ] {
        let xs = drift_cycle(&net);
        let mut ctx = OpfContext::new();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let x = &xs[i % xs.len()];
                i += 1;
                solve_opf_with(black_box(&net), x, &opts, &mut ctx).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dc_opf_cold");
    for (name, net) in [
        ("case30", cases::case30()),
        ("case57", cases::case57()),
        ("case118", cases::case118()),
    ] {
        let x = net.nominal_reactances();
        group.bench_function(name, |b| {
            b.iter(|| solve_opf(black_box(&net), &x, &opts).unwrap())
        });
    }
    group.finish();
}

fn bench_effectiveness(c: &mut Criterion) {
    // The inner loop of the Fig. 6 sweeps: score one perturbation against
    // a prebuilt ensemble (100 attacks here; 1000 in the paper runs).
    let net = cases::case14();
    let cfg = MtdConfig {
        n_attacks: 100,
        ..MtdConfig::default()
    };
    let x_pre = net.nominal_reactances();
    let opf = solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf.dispatch, &cfg).unwrap();
    let mut x_post = x_pre.clone();
    for (k, l) in net.dfacts_branches().into_iter().enumerate() {
        x_post[l] *= if k % 2 == 0 { 1.3 } else { 0.7 };
    }
    c.bench_function("effectiveness_eval/case14_100attacks", |b| {
        b.iter(|| {
            effectiveness::evaluate_with_attacks(black_box(&net), &x_pre, &x_post, &attacks, &cfg)
                .unwrap()
        })
    });
}

fn bench_selection(c: &mut Criterion) {
    // One reduced-budget multistart round of the SPA-constrained OPF.
    let net = cases::case14();
    let cfg = MtdConfig {
        n_starts: 1,
        max_evals_per_start: 120,
        ..MtdConfig::default()
    };
    let x_pre = net.nominal_reactances();
    c.bench_function("select_mtd/case14_1start_120evals", |b| {
        b.iter(|| selection::select_mtd(black_box(&net), &x_pre, 0.05, &cfg).unwrap())
    });
}

fn bench_session(c: &mut Criterion) {
    // The session-layer gate pair: one reduced-budget case118 selection,
    // once through a warm session and once through the hand-threaded
    // hoisted path (precomputed H + basis, fresh contexts inside).
    // Identical budgets and threshold, so the rows are directly
    // comparable within one run.
    // γ_th = 0 keeps the search in its first penalty round, so every
    // iteration runs the same deterministic amount of work — tight
    // enough for the 1.05× within-run gate to be meaningful.
    //
    // Setup (case118 H build, QR, session warm-up) runs seconds, so it
    // is lazy: a filtered `cargo bench` run that excludes both rows
    // never pays for it (`bench_function` skips the closure entirely).
    let cfg = MtdConfig {
        n_starts: 1,
        max_evals_per_start: 20,
        ..MtdConfig::default()
    };
    let gamma_th = 0.0;
    let warm: std::sync::OnceLock<(
        Network,
        Vec<f64>,
        gridmtd_linalg::Matrix,
        spa::GammaBasis,
        MtdSession,
    )> = std::sync::OnceLock::new();
    let warm = |cfg: &MtdConfig| {
        warm.get_or_init(|| {
            let net = cases::case118();
            let x_pre = net.nominal_reactances();
            let h_pre = net.measurement_matrix(&x_pre).unwrap();
            let basis = spa::GammaBasis::new(&h_pre).unwrap();
            let session = MtdSession::builder(net.clone())
                .config(cfg.clone())
                .build()
                .unwrap();
            session.select(gamma_th).unwrap(); // warm every cache once
            (net, x_pre, h_pre, basis, session)
        })
    };

    // The hand-threaded reference runs first: machine warm-up (page
    // cache, frequency ramp) penalizes the first row measured, and the
    // gate must not pass on that accident.
    c.bench_function("select_mtd_with/case118", |b| {
        let (net, x_pre, h_pre, basis, _) = warm(&cfg);
        b.iter(|| {
            selection::select_mtd_with(black_box(net), x_pre, h_pre, basis, gamma_th, &cfg).unwrap()
        })
    });

    c.bench_function("session_select_warm/case118", |b| {
        let (_, _, _, _, session) = warm(&cfg);
        b.iter(|| black_box(session).select(gamma_th).unwrap())
    });
}

fn bench_selection_methods(c: &mut Criterion) {
    // The PR8 contract rows: the analytic-gradient selection (the
    // default method) on both sparse-path cases, plus the
    // derivative-free reference on case118 at the identical budget and
    // threshold. Each runs through its own warm session — the serving
    // configuration — so the rows measure the steady-state selection
    // cost, not H builds or symbolic factorizations. The CI gates hold
    // the gradient rows at ≤ 2x their committed baseline and the
    // case118 gradient/Nelder–Mead ratio at ≤ 0.25 within one run.
    let gamma_th = 0.0;
    let budgeted = |method: SelectionMethod| MtdConfig {
        n_starts: 1,
        max_evals_per_start: 20,
        selection_method: method,
        ..MtdConfig::default()
    };
    let warm_session = |net: Network, method: SelectionMethod| {
        let session = MtdSession::builder(net)
            .config(budgeted(method))
            .build()
            .unwrap();
        session.select(gamma_th).unwrap(); // fill every warm cache once
        session
    };

    let grad57: std::sync::OnceLock<MtdSession> = std::sync::OnceLock::new();
    c.bench_function("select_mtd_grad/case57", |b| {
        let s = grad57.get_or_init(|| warm_session(cases::case57(), SelectionMethod::Gradient));
        b.iter(|| black_box(s).select(gamma_th).unwrap())
    });

    let grad118: std::sync::OnceLock<MtdSession> = std::sync::OnceLock::new();
    c.bench_function("select_mtd_grad/case118", |b| {
        let s = grad118.get_or_init(|| warm_session(cases::case118(), SelectionMethod::Gradient));
        b.iter(|| black_box(s).select(gamma_th).unwrap())
    });

    let nm118: std::sync::OnceLock<MtdSession> = std::sync::OnceLock::new();
    c.bench_function("select_mtd_nm/case118", |b| {
        let s = nm118.get_or_init(|| warm_session(cases::case118(), SelectionMethod::NelderMead));
        b.iter(|| black_box(s).select(gamma_th).unwrap())
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_opf, bench_effectiveness, bench_selection
}
// The case118 selection pair runs seconds per iteration; a smaller
// sample keeps the CI bench step affordable while the within-run ratio
// gate stays meaningful (both rows share one process and machine
// state).
criterion_group! {
    name = session_pipeline;
    config = Criterion::default().sample_size(3).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_session, bench_selection_methods
}
criterion_main!(pipeline, session_pipeline);
