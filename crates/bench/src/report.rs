//! Minimal fixed-width table printing for experiment binaries.

/// Prints a header banner for an experiment.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len().max(20));
    println!("{line}");
    println!("{title}");
    println!("{line}");
}

/// Prints a table with right-aligned numeric columns.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(widths.iter())
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", rule.join("  "));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", cells.join("  "));
    }
}

/// Formats a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_formats_decimals() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(-0.5, 3), "-0.500");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }
}
