//! Experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper
//! (Lakshminarayana & Yau, DSN 2018); `EXPERIMENTS.md` at the workspace
//! root records paper-vs-measured values. The [`report`] module holds the
//! shared text-table printer, and [`paperconfig`] pins the calibrated
//! experiment configuration (noise σ etc., see `DESIGN.md`).

pub mod paperconfig;
pub mod report;
