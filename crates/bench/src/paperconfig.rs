//! The calibrated experiment configuration shared by all figure/table
//! binaries.
//!
//! The paper specifies α = 5 × 10⁻⁴, ‖a‖₁/‖z‖₁ ≈ 0.08, 1000 attacks and
//! η_max = 0.5, but not the measurement-noise σ. `DESIGN.md` documents
//! the calibration: σ = 0.10 MW (0.001 p.u.) reproduces the operating point of
//! Fig. 6(a) (η'(0.95) ≈ 0.96–0.97 at the top of the attainable γ range,
//! matching the paper's 0.97 at γ = 0.44).

use gridmtd_core::MtdConfig;

/// Calibrated noise standard deviation, MW.
pub const NOISE_SIGMA_MW: f64 = 0.10;

/// Full-budget configuration for the paper-scale experiments.
pub fn paper_config() -> MtdConfig {
    MtdConfig {
        noise_sigma_mw: NOISE_SIGMA_MW,
        n_attacks: 1000,
        n_starts: 6,
        max_evals_per_start: 400,
        ..MtdConfig::default()
    }
}

/// Reads an optional `--sigma <mw>` / `--attacks <n>` / `--starts <n>`
/// override set from the command line (used for calibration sweeps).
pub fn config_from_args() -> MtdConfig {
    let mut cfg = paper_config();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < args.len() {
        match args[i].as_str() {
            "--sigma" => {
                cfg.noise_sigma_mw = args[i + 1].parse().expect("--sigma takes a float");
                i += 2;
            }
            "--attacks" => {
                cfg.n_attacks = args[i + 1].parse().expect("--attacks takes an integer");
                i += 2;
            }
            "--starts" => {
                cfg.n_starts = args[i + 1].parse().expect("--starts takes an integer");
                i += 2;
            }
            "--evals" => {
                cfg.max_evals_per_start = args[i + 1].parse().expect("--evals takes an integer");
                i += 2;
            }
            _ => i += 1,
        }
    }
    cfg
}
