//! Paired measurement behind the session-layer performance contract:
//! `MtdSession::select` (warm session, shared symbolic state) vs the
//! hand-threaded `select_mtd_with` hoisted path, on case118.
//!
//! The two implementations differ by a few percent — well inside the
//! slow machine drift (frequency ramps, cache state) that separates two
//! *sequentially* measured criterion rows. A paired comparison needs
//! interleaved sampling: this binary alternates hand/session selections
//! round by round, so drift hits both sides equally and the ratio is
//! meaningful at the 1.05× gate the CI enforces.
//!
//! Usage: `session_gate [rounds]` (default 4). Appends both rows to
//! `GRIDMTD_BENCH_JSON` in the snapshot format `bench_gate` consumes:
//!
//! ```text
//! GRIDMTD_BENCH_JSON=bench.json session_gate
//! bench_gate --within bench.json 1.05 \
//!     session_select_warm/case118 select_mtd_with/case118
//! ```

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

use gridmtd_core::{selection, spa, MtdConfig, MtdSession};
use gridmtd_powergrid::cases;

const SESSION_ROW: &str = "session_select_warm/case118";
const HAND_ROW: &str = "select_mtd_with/case118";

fn append_row(id: &str, total: Duration, iters: u64) {
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!("{id}: {mean_ns:.1} ns/iter ({iters} iters, interleaved)");
    if let Ok(path) = std::env::var("GRIDMTD_BENCH_JSON") {
        let line = format!("{{\"bench\":\"{id}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}\n");
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // Same reduced budget as the criterion rows in
    // `benches/pipeline.rs`: γ_th = 0 keeps every selection in its
    // first penalty round, so the per-call work is deterministic.
    let net = cases::case118();
    let cfg = MtdConfig {
        n_starts: 1,
        max_evals_per_start: 20,
        ..MtdConfig::default()
    };
    let gamma_th = 0.0;

    let x_pre = net.nominal_reactances();
    let h_pre = net.measurement_matrix(&x_pre).unwrap();
    let basis = spa::GammaBasis::new(&h_pre).unwrap();
    let session = MtdSession::builder(net.clone())
        .config(cfg.clone())
        .build()
        .unwrap();

    // One warm-up pair outside the measurement.
    black_box(selection::select_mtd_with(&net, &x_pre, &h_pre, &basis, gamma_th, &cfg).unwrap());
    black_box(session.select(gamma_th).unwrap());

    let mut hand_total = Duration::ZERO;
    let mut session_total = Duration::ZERO;
    for round in 0..rounds {
        let t = Instant::now();
        black_box(
            selection::select_mtd_with(&net, &x_pre, &h_pre, &basis, gamma_th, &cfg).unwrap(),
        );
        let hand = t.elapsed();
        hand_total += hand;

        let t = Instant::now();
        black_box(session.select(gamma_th).unwrap());
        let sess = t.elapsed();
        session_total += sess;

        println!(
            "round {round}: hand {:.3}s  session {:.3}s",
            hand.as_secs_f64(),
            sess.as_secs_f64()
        );
    }

    append_row(HAND_ROW, hand_total, rounds);
    append_row(SESSION_ROW, session_total, rounds);
}
