//! **Ablation** — Theorem 1 on synthetic matrices, and how far
//! physically realizable D-FACTS perturbations fall short of it.
//!
//! On synthetic measurement matrices where a `W`-orthogonal `H'` exists,
//! the theorem guarantees (a) no nonzero stealthy attack survives and
//! (b) every attack keeps its full residual magnitude. On the IEEE
//! 14-bus system, D-FACTS perturbations can only rotate 6 of 13 state
//! directions, so the worst-case attack retains a residual ratio of 0 —
//! quantifying why the paper's Section V-C needs the γ heuristic.

use gridmtd_bench::report;
use gridmtd_core::{spa, theory, MtdError};
use gridmtd_linalg::Matrix;
use gridmtd_powergrid::cases;
use gridmtd_stats::normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), MtdError> {
    report::banner("Ablation: Theorem 1 (orthogonal MTD) vs realizable D-FACTS MTD");

    // --- Synthetic: construct H and an exactly orthogonal H'. --------
    let mut rng = StdRng::seed_from_u64(42);
    let (m, n) = (12usize, 3usize);
    let h = Matrix::from_fn(m, n, |_, _| normal::sample_standard(&mut rng));
    // Orthogonal complement basis: complement projector times random
    // columns, re-orthonormalized.
    let pc = gridmtd_linalg::subspace::complement_projector(&h)?;
    let raw = Matrix::from_fn(m, n, |_, _| normal::sample_standard(&mut rng));
    let h_orth_full = pc.matmul(&raw)?;
    let h_orth = gridmtd_linalg::Qr::factor(&h_orth_full)
        .expect("tall matrix")
        .q_thin();
    let w = vec![1.0; m];

    println!(
        "orthogonality condition holds on synthetic pair: {}",
        theory::orthogonality_condition_holds(&h, &h_orth, &w)?
    );
    println!(
        "gamma(H, H') = {:.4} rad (pi/2 = {:.4})",
        spa::gamma(&h, &h_orth)?,
        std::f64::consts::FRAC_PI_2
    );
    let mut all_detected = true;
    let mut min_ratio = f64::INFINITY;
    for trial in 0..200 {
        let c: Vec<f64> = (0..n)
            .map(|k| ((trial * 7 + k * 13) % 19) as f64 / 19.0 - 0.4)
            .collect();
        if gridmtd_linalg::vector::norm2(&c) == 0.0 {
            continue;
        }
        let a = h.matvec(&c)?;
        if theory::is_undetectable(&h_orth, &a)? {
            all_detected = false;
        }
        let r = theory::noiseless_residual(&h_orth, &a)?;
        min_ratio = min_ratio.min(r / gridmtd_linalg::vector::norm2(&a));
    }
    println!("all 200 stealthy attacks detectable under orthogonal MTD: {all_detected}");
    println!("minimum residual ratio ||r'||/||a|| = {min_ratio:.4} (Theorem 1 predicts 1.0)");
    println!();

    // --- Realizable: IEEE 14-bus D-FACTS perturbation. ----------------
    let net = cases::case14();
    let x_pre = net.nominal_reactances();
    let h_pre = net.measurement_matrix(&x_pre)?;
    let mut x_post = x_pre.clone();
    for (k, l) in net.dfacts_branches().into_iter().enumerate() {
        x_post[l] *= if k % 2 == 0 { 1.5 } else { 0.5 };
    }
    let h_post = net.measurement_matrix(&x_post)?;
    println!(
        "IEEE 14-bus +/-50% D-FACTS MTD: orthogonality condition holds: {}",
        theory::orthogonality_condition_holds(&h_pre, &h_post, &vec![1.0; h_pre.rows()])?
    );
    println!(
        "gamma = {:.4} rad; worst-case column residual ratio = {:.4}",
        spa::gamma(&h_pre, &h_post)?,
        theory::min_residual_ratio_over_columns(&h_pre, &h_post)?
    );
    let angles = spa::angles(&h_pre, &h_post)?;
    let zero_angles = angles.iter().filter(|&&t| t < 1e-6).count();
    println!(
        "{zero_angles} of {} principal angles are zero: attacks confined to the shared",
        angles.len()
    );
    println!("subspace stay stealthy — hence the paper's gamma-based heuristic rather");
    println!("than the (unreachable) orthogonality condition.");
    Ok(())
}
