//! **Table I** — BDD residuals of two stealthy attacks under four
//! single-line MTD perturbations on the 4-bus system (noiseless).
//!
//! Paper values (pattern): attack 1 is exposed by MTDs on lines 1–2 and
//! invisible to MTDs on lines 3–4; attack 2 the reverse. Absolute values
//! depend on the measurement-unit convention; the zero/nonzero pattern is
//! the reproducible claim (Section IV-B).

use gridmtd_bench::report;
use gridmtd_core::theory;
use gridmtd_powergrid::cases;

fn main() {
    report::banner("Table I: noiseless BDD residuals, 4-bus system (eta = 0.2)");
    let net = cases::case4();
    let x0 = net.nominal_reactances();
    let h = net.measurement_matrix(&x0).expect("valid case data");

    // Attacks of the paper: c = [0,1,1,1] and c = [0,0,0,1] with bus 1 as
    // the (slack) reference, i.e. reduced-state offsets [1,1,1], [0,0,1].
    // Magnitudes are normalized so the attacks are comparable to the
    // paper's ~2.8 residual scale.
    let attacks = [
        ("Attack 1 (c=[0,1,1,1])", vec![1.0, 1.0, 1.0]),
        ("Attack 2 (c=[0,0,0,1])", vec![0.0, 0.0, 1.0]),
    ];

    let mut rows = Vec::new();
    for (name, c) in &attacks {
        // The paper feeds the raw state offset c through the per-unit
        // measurement matrix (susceptances 1/x rather than MW/rad); our H
        // is in MW/rad on a 100 MVA base, so divide once by the base.
        let a_raw = h.matvec(c).expect("dimension");
        let a: Vec<f64> = a_raw.iter().map(|v| v / net.base_mva()).collect();
        let mut row = vec![name.to_string()];
        for l in 0..4 {
            let mut x = x0.clone();
            x[l] *= 1.2; // x' = (1 + eta) x, eta = 0.2
            let h_post = net.measurement_matrix(&x).expect("valid reactances");
            let r = theory::noiseless_residual(&h_post, &a).expect("projector");
            let r_disp = if r < 1e-8 { 0.0 } else { r };
            row.push(report::f(r_disp, 2));
        }
        rows.push(row);
    }
    report::table(&["", "r'(1)", "r'(2)", "r'(3)", "r'(4)"], &rows);
    println!();
    println!("paper:  Attack 1 -> 2.82  2.87  0     0");
    println!("        Attack 2 -> 0     0     2.87  2.82");
    println!("(zero / nonzero pattern is the reproduction target)");
}
