//! **Table III** — post-perturbation generator dispatch and OPF cost for
//! the four single-line MTDs `∆x¹..∆x⁴` (η = 0.2) on the 4-bus system.
//!
//! Paper values: dispatch (337.37, 162.62), (340.51, 159.48),
//! (348.62, 151.37), (345.95, 154.02); costs $1.1626e4, $1.1595e4
//! (printed as 1.595e4 in the paper — a typo, cf. 20·340.51 + 30·159.48),
//! $1.1514e4, $1.154e4. The reproduction target: every perturbation costs
//! more than the $1.15e4 baseline, ∆x³ cheapest and ∆x¹ most expensive.

use gridmtd_bench::report;
use gridmtd_opf::{solve_opf, OpfOptions};
use gridmtd_powergrid::cases;

fn main() {
    report::banner("Table III: post-perturbation OPF, 4-bus system (eta = 0.2)");
    let net = cases::case4();
    let x0 = net.nominal_reactances();
    let opts = OpfOptions::default();

    let mut rows = Vec::new();
    for l in 0..4 {
        let mut x = x0.clone();
        x[l] *= 1.2;
        let sol = solve_opf(&net, &x, &opts).expect("perturbed OPF feasible");
        rows.push(vec![
            format!("dx{}", l + 1),
            report::f(sol.dispatch[0], 2),
            report::f(sol.dispatch[1], 2),
            format!("{:.4e}", sol.cost),
        ]);
    }
    report::table(&["MTD", "Gen1 (MW)", "Gen2 (MW)", "OPF cost ($)"], &rows);
    println!();
    println!("paper: dx1 337.37 162.62 1.1626e4");
    println!("       dx2 340.51 159.48 1.1595e4 (printed 1.595e4; typo)");
    println!("       dx3 348.62 151.37 1.1514e4");
    println!("       dx4 345.95 154.02 1.1540e4");
}
