//! **Scaling study** — how the MTD pipeline scales with grid size, on
//! synthetic meshed networks (substitute for additional IEEE datasets;
//! see `DESIGN.md`).
//!
//! For each size: time the DC-OPF, the subspace angle and one
//! SPA-constrained selection round; report the attainable γ ceiling.
//!
//! Usage: `scaling [--starts N] [--evals N]`

use std::time::Instant;

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{selection, spa, MtdError};
use gridmtd_powergrid::cases::{synthetic, SyntheticConfig};

fn main() -> Result<(), MtdError> {
    let mut cfg = paperconfig::config_from_args();
    cfg.n_starts = cfg.n_starts.min(2);
    cfg.max_evals_per_start = cfg.max_evals_per_start.min(150);
    report::banner("Scaling: MTD pipeline vs grid size (synthetic meshed networks)");

    let mut rows = Vec::new();
    for &n in &[10usize, 20, 40, 80] {
        let net = synthetic(
            &SyntheticConfig {
                n_buses: n,
                ..SyntheticConfig::default()
            },
            7,
        );
        let x0 = net.nominal_reactances();

        let t0 = Instant::now();
        let opf = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options())?;
        let opf_ms = t0.elapsed().as_secs_f64() * 1e3;

        let h = net.measurement_matrix(&x0)?;
        let mut x1 = x0.clone();
        for (k, l) in net.dfacts_branches().into_iter().enumerate() {
            x1[l] *= if k % 2 == 0 { 1.3 } else { 0.7 };
        }
        let h1 = net.measurement_matrix(&x1)?;
        let t0 = Instant::now();
        let g = spa::gamma(&h, &h1)?;
        let gamma_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let (_, ceiling) = selection::max_achievable_gamma(&net, &x0, &cfg)?;
        let select_ms = t0.elapsed().as_secs_f64() * 1e3;

        rows.push(vec![
            format!("{n}"),
            format!("{}", net.n_branches()),
            format!("{}", net.dfacts_branches().len()),
            report::f(opf.cost, 0),
            report::f(opf_ms, 1),
            report::f(g, 3),
            report::f(gamma_ms, 2),
            report::f(ceiling, 3),
            report::f(select_ms, 0),
        ]);
    }
    report::table(
        &[
            "buses",
            "lines",
            "dfacts",
            "opf $",
            "opf ms",
            "gamma",
            "gamma ms",
            "ceiling",
            "search ms",
        ],
        &rows,
    );
    Ok(())
}
