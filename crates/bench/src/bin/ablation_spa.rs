//! **Ablation** — validity of the subspace-angle heuristic and the
//! closed-form detection probabilities.
//!
//! Three checks behind the paper's methodology:
//!
//! 1. the analytic (noncentral-χ²) detection probability matches the
//!    Monte-Carlo estimate the paper actually computes (Appendix B);
//! 2. the residual bound `‖r'_a‖ ≤ sin(γ)·‖a‖` of Appendix C holds for
//!    every attack (with γ the largest principal angle);
//! 3. across random perturbations, mean detection probability increases
//!    with γ — the Section V-C conjecture that justifies using γ as the
//!    design criterion.
//!
//! Usage: `ablation_spa [--sigma MW] [--attacks N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{effectiveness, spa, MtdError};
use gridmtd_linalg::vector;
use gridmtd_powergrid::cases;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), MtdError> {
    let mut cfg = paperconfig::config_from_args();
    cfg.n_attacks = cfg.n_attacks.min(200);
    report::banner("Ablation: SPA heuristic and analytic detection probabilities");

    let net = cases::case14();
    let x_pre = net.nominal_reactances();
    let h_pre = net.measurement_matrix(&x_pre)?;
    let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg)?;

    // --- 1. analytic vs Monte-Carlo detection probabilities ----------
    let mut x_post = x_pre.clone();
    for (k, l) in net.dfacts_branches().into_iter().enumerate() {
        x_post[l] *= if k % 2 == 0 { 1.4 } else { 0.6 };
    }
    let bdd = effectiveness::post_mtd_detector(&net, &x_post, &cfg)?;
    let opf_post = gridmtd_opf::solve_opf(&net, &x_post, &cfg.opf_options())?;
    let mut worst_gap = 0.0f64;
    let mut rows = Vec::new();
    for (i, a) in attacks.iter().take(8).enumerate() {
        let analytic = bdd.detection_probability(&a.vector)?;
        let mc =
            effectiveness::monte_carlo_detection(&net, &x_post, &opf_post.dispatch, a, 2000, &cfg)?;
        worst_gap = worst_gap.max((analytic - mc).abs());
        rows.push(vec![
            format!("{i}"),
            report::f(analytic, 3),
            report::f(mc, 3),
            report::f((analytic - mc).abs(), 3),
        ]);
    }
    report::table(&["attack", "analytic PD", "MC PD", "|gap|"], &rows);
    println!("worst |analytic - MC| over 8 attacks x 2000 draws: {worst_gap:.3}");
    println!();

    // --- 2. the sin(gamma) residual bound (Appendix C, eq. 7) --------
    let h_post = net.measurement_matrix(&x_post)?;
    let gamma = spa::gamma(&h_pre, &h_post)?;
    let projector = gridmtd_linalg::subspace::complement_projector(&h_post)?;
    let mut worst_ratio = 0.0f64;
    for a in &attacks {
        let r = projector.matvec(&a.vector)?;
        let ratio = vector::norm2(&r) / vector::norm2(&a.vector);
        worst_ratio = worst_ratio.max(ratio);
    }
    println!(
        "residual bound: max ||r'_a||/||a|| = {:.4} <= sin(gamma) = {:.4}  [{}]",
        worst_ratio,
        gamma.sin(),
        if worst_ratio <= gamma.sin() + 1e-9 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!();

    // --- 3. gamma vs mean detection across random perturbations ------
    let mut rng = StdRng::seed_from_u64(99);
    let mut samples: Vec<(f64, f64)> = Vec::new();
    for _ in 0..40 {
        let mut x = x_pre.clone();
        for l in net.dfacts_branches() {
            x[l] *= 1.0 + rng.gen_range(-0.5..0.5f64);
        }
        let eval = effectiveness::evaluate_with_attacks(&net, &x_pre, &x, &attacks, &cfg)?;
        samples.push((eval.gamma, eval.mean_detection()));
    }
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Spearman-style check: correlation of ranks.
    let n = samples.len() as f64;
    let mean_rank = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut den_a = 0.0;
    let mut den_b = 0.0;
    let mut pd_ranks: Vec<(usize, f64)> = samples.iter().map(|s| s.1).enumerate().collect();
    pd_ranks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut rank_of = vec![0.0; samples.len()];
    for (rank, (idx, _)) in pd_ranks.iter().enumerate() {
        rank_of[*idx] = rank as f64;
    }
    for (i, _) in samples.iter().enumerate() {
        let ra = i as f64 - mean_rank;
        let rb = rank_of[i] - mean_rank;
        num += ra * rb;
        den_a += ra * ra;
        den_b += rb * rb;
    }
    let spearman = num / (den_a.sqrt() * den_b.sqrt());
    println!("Spearman correlation of gamma vs mean detection over 40 random");
    println!(
        "perturbations: {spearman:.3}  (the Section V-C conjecture predicts strongly positive)"
    );
    Ok(())
}
