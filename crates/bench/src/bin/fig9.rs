//! **Fig. 9** — tradeoff between MTD effectiveness `η'(δ)` and
//! operational cost, IEEE 14-bus with dynamic load (the 6 PM point of
//! the daily trace, attacker knowledge stale by one hour).
//!
//! Reproduction target: cost ≈ 0 at low effectiveness, rising steeply as
//! `η'(δ) → 1` (the paper reports 0.96% → 2.31% cost when η'(0.9) moves
//! from 0.8 to 0.9).
//!
//! Usage: `fig9 [--sigma MW] [--attacks N] [--starts N] [--evals N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{selection, tradeoff, MtdError};
use gridmtd_powergrid::cases;
use gridmtd_traces::nyiso_winter_weekday;

fn main() -> Result<(), MtdError> {
    let cfg = paperconfig::config_from_args();
    report::banner(&format!(
        "Fig. 9: effectiveness vs operational cost at 6 PM, IEEE 14-bus (sigma = {} MW)",
        cfg.noise_sigma_mw
    ));

    let base = cases::case14();
    let trace = nyiso_winter_weekday();
    // 6 PM system; the attacker learned the matrix at 5 PM.
    let net_6pm = base.scale_loads(trace.scaling_factor(18, base.total_load()));
    let net_5pm = base.scale_loads(trace.scaling_factor(17, base.total_load()));
    let x_nominal = selection::spread_pre_perturbation(&base, cfg.eta_max);
    let (x_pre, _) = selection::baseline_opf(&net_5pm, &x_nominal, &cfg)?;

    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64 * 0.05).collect();
    let deltas = [0.5, 0.8, 0.9, 0.95];
    let curve = tradeoff::tradeoff_sweep(&net_6pm, &x_pre, &thresholds, &deltas, &cfg)?;

    println!(
        "load at 6 PM: {:.1} MW; no-MTD OPF cost: ${:.1}/h",
        net_6pm.total_load(),
        curve.baseline_cost
    );
    println!("gamma ceiling: {:.3} rad", curve.gamma_ceiling);
    println!();
    let rows: Vec<Vec<String>> = curve
        .points
        .iter()
        .map(|p| {
            vec![
                report::f(p.gamma_threshold, 2),
                report::f(p.gamma_achieved, 3),
                report::f(p.eta(0.5).unwrap_or(0.0), 3),
                report::f(p.eta(0.8).unwrap_or(0.0), 3),
                report::f(p.eta(0.9).unwrap_or(0.0), 3),
                report::f(p.eta(0.95).unwrap_or(0.0), 3),
                report::f(p.cost_increase_percent, 2),
            ]
        })
        .collect();
    report::table(
        &[
            "g_th",
            "g_ach",
            "eta(0.5)",
            "eta(0.8)",
            "eta(0.9)",
            "eta(0.95)",
            "cost (%)",
        ],
        &rows,
    );
    println!();
    println!("paper: cost near zero at low eta, then a steep rise near eta -> 1");
    println!("(0.96% at eta'(0.9)=0.8 up to 2.31% at eta'(0.9)=0.9; up to ~4%).");
    Ok(())
}
