//! **Fig. 8** — fraction of 500 randomly-chosen ±2% MTD perturbations
//! (the "keyspace" of [11–12]) that satisfy `η'(δ) ≥ 0.9`, as a function
//! of δ, IEEE 14-bus.
//!
//! Reproduction target: fewer than 10% of random perturbations satisfy
//! `η'(0.9) ≥ 0.9`.
//!
//! Usage: `fig8 [--sigma MW] [--attacks N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{effectiveness, tradeoff, MtdError};
use gridmtd_powergrid::cases;

fn main() -> Result<(), MtdError> {
    let mut cfg = paperconfig::config_from_args();
    // 500 keyspace trials x 1000 attacks is the paper's full setting; the
    // analytic detection probabilities make it cheap enough to run as-is.
    report::banner(&format!(
        "Fig. 8: fraction of 500 random +/-2% perturbations with eta(delta) >= 0.9 (sigma = {} MW)",
        cfg.noise_sigma_mw
    ));
    cfg.seed = 8;

    let net = cases::case14();
    let x_pre = net.nominal_reactances();
    let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg)?;

    let deltas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    // As in Fig. 7, the literal ±2% keyspace is uniformly ineffective at
    // the calibrated noise level; a full-D-FACTS-range (±50%) keyspace reproduces the
    // paper's decay shape. Both are reported.
    for fraction in [0.02, 0.5] {
        println!("random perturbation fraction: +/-{:.0}%", fraction * 100.0);
        let trials =
            tradeoff::random_keyspace_study(&net, &x_pre, &attacks, fraction, 500, &deltas, &cfg)?;
        let mut rows = Vec::new();
        for (k, &d) in deltas.iter().enumerate() {
            let good = trials
                .iter()
                .filter(|t| t.effectiveness[k].1 >= 0.9)
                .count();
            rows.push(vec![
                report::f(d, 1),
                format!("{good}/500"),
                report::f(good as f64 / 500.0, 3),
            ]);
        }
        report::table(&["delta", "count", "fraction"], &rows);
        println!();
    }
    println!();
    println!("paper: the fraction decays quickly with delta; fewer than 10% of");
    println!("random perturbations satisfy eta(0.9) >= 0.9.");
    Ok(())
}
