//! **Fig. 7** — effectiveness `η'(δ)` as a function of δ for five
//! randomly-chosen MTD perturbations (the strategy of prior work
//! [11–13]: each D-FACTS reactance within ±2% of its optimal value),
//! IEEE 14-bus.
//!
//! Reproduction target: high trial-to-trial variability — random
//! perturbations cannot guarantee effectiveness.
//!
//! Usage: `fig7 [--sigma MW] [--attacks N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{effectiveness, tradeoff, MtdError};
use gridmtd_powergrid::cases;

fn main() -> Result<(), MtdError> {
    let cfg = paperconfig::config_from_args();
    report::banner(&format!(
        "Fig. 7: five random +/-2% MTD perturbations, IEEE 14-bus (sigma = {} MW)",
        cfg.noise_sigma_mw
    ));

    let net = cases::case14();
    let x_pre = net.nominal_reactances();
    let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg)?;

    let deltas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    // The paper states ±2% random perturbations, but at the noise level
    // that reproduces its Fig. 6(a) such perturbations are *completely*
    // ineffective (η'(δ) = 0 for all δ > 0) — an even stronger version
    // of the paper's conclusion. The trial-to-trial variability the
    // figure shows appears at larger random perturbations, so both
    // fractions are reported (see EXPERIMENTS.md).
    for fraction in [0.02, 0.5] {
        println!("random perturbation fraction: +/-{:.0}%", fraction * 100.0);
        let trials =
            tradeoff::random_keyspace_study(&net, &x_pre, &attacks, fraction, 5, &deltas, &cfg)?;
        let mut headers: Vec<String> = vec!["trial".into(), "gamma".into()];
        headers.extend(deltas.iter().map(|d| format!("d={d:.1}")));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = trials
            .iter()
            .map(|t| {
                let mut row = vec![format!("{}", t.trial + 1), report::f(t.gamma, 4)];
                row.extend(t.effectiveness.iter().map(|&(_, e)| report::f(e, 3)));
                row
            })
            .collect();
        report::table(&headers_ref, &rows);
        println!();
    }
    println!("paper: curves vary strongly across trials (no guarantee of");
    println!("effectiveness from random perturbations).");
    Ok(())
}
