//! **Figs. 10 and 11** — MTD operation over a full day driven by the
//! (synthetic) NYISO winter-weekday trace, IEEE 14-bus.
//!
//! * Fig. 10: hourly total load and MTD operational cost with `γ_th`
//!   tuned each hour for `η'(0.9) ≥ 0.9`; the cost tracks load
//!   (congestion at peak makes the MTD dearer).
//! * Fig. 11: the three subspace angles per hour —
//!   `γ(H_t, H_t')` (drift, ≈0), `γ(H_t, H'_t')` (defense) and
//!   `γ(H_t', H'_t')`, with the latter two nearly equal (validating the
//!   `γ(H_t, H'_t') ≈ γ(H_t', H'_t')` approximation of Section VI).
//!
//! Usage: `fig10_11 [--sigma MW] [--attacks N] [--starts N] [--evals N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{timeline, MtdError, TimelineOptions};
use gridmtd_powergrid::cases;
use gridmtd_traces::nyiso_winter_weekday;

fn main() -> Result<(), MtdError> {
    let cfg = paperconfig::config_from_args();
    report::banner(&format!(
        "Figs. 10-11: daily MTD operation, IEEE 14-bus (sigma = {} MW)",
        cfg.noise_sigma_mw
    ));

    let net = cases::case14();
    let trace = nyiso_winter_weekday();
    let opts = TimelineOptions::default();
    let outcomes = timeline::simulate_day(&net, &trace, &opts, &cfg)?;

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                format!("{:02}:00", o.hour),
                report::f(o.total_load_mw, 0),
                report::f(o.cost_no_mtd, 0),
                report::f(o.cost_with_mtd, 0),
                report::f(o.cost_increase_percent, 2),
                report::f(o.gamma_drift, 3),
                report::f(o.gamma_defense, 3),
                report::f(o.gamma_current, 3),
                report::f(o.gamma_threshold, 2),
                report::f(o.effectiveness, 3),
                if o.target_met {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    report::table(
        &[
            "hour",
            "load(MW)",
            "C_opf($)",
            "C_mtd($)",
            "cost(%)",
            "g(Ht,Ht')",
            "g(Ht,H')",
            "g(Ht',H')",
            "g_th",
            "eta(0.9)",
            "met",
        ],
        &rows,
    );
    println!();
    let peak = outcomes.iter().max_by(|a, b| {
        a.cost_increase_percent
            .partial_cmp(&b.cost_increase_percent)
            .unwrap()
    });
    if let Some(p) = peak {
        println!(
            "costliest hour: {:02}:00 at {:.2}% (load {:.0} MW)",
            p.hour, p.cost_increase_percent, p.total_load_mw
        );
    }
    println!();
    println!("paper (Fig. 10): cost rises with load, up to ~2.5-3% at the evening peak;");
    println!("paper (Fig. 11): gamma(Ht,Ht') ~ 0 all day; the other two angles coincide.");
    Ok(())
}
