//! **Section VII-D** — the insurance comparison: MTD operational premium
//! versus the damage of an undetected FDI attack.
//!
//! The paper cites prior work showing a BDD-bypassing attack can inflate
//! the OPF cost by up to 28% on the IEEE 14-bus system, against an MTD
//! premium of a few percent. This binary regenerates that comparison with
//! this repository's models: load-redistribution attacks of increasing
//! magnitude versus the calibrated cost of an η'(0.9) ≥ 0.9 MTD.
//!
//! Usage: `discussion_impact [--attacks N] [--starts N] [--evals N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{impact, selection, MtdError};
use gridmtd_powergrid::cases;

fn main() -> Result<(), MtdError> {
    let cfg = paperconfig::config_from_args();
    report::banner("Section VII-D: MTD premium vs undetected-attack damage, IEEE 14-bus");

    let net = cases::case14();

    // Damage side: load-redistribution attacks moving apparent load from
    // the big bus-3 load pocket to the remote bus 14.
    let mut rows = Vec::new();
    for mag in [10.0, 20.0, 40.0, 60.0, 80.0] {
        let mut bias = vec![0.0; net.n_buses()];
        bias[2] = -mag;
        bias[13] = mag;
        let im = impact::load_redistribution_impact(&net, &bias, &cfg)?;
        rows.push(vec![
            format!("{mag:.0} MW"),
            report::f(im.honest_cost, 0),
            report::f(im.attacked_cost, 0),
            report::f(100.0 * im.relative_damage, 2),
            format!("{}", im.overloads.len()),
        ]);
    }
    report::table(
        &["shifted", "honest $", "attacked $", "damage %", "overloads"],
        &rows,
    );
    println!();

    // Premium side: the SPA-constrained MTD at a strong threshold.
    let x_pre = net.nominal_reactances();
    let sel = selection::select_mtd(&net, &x_pre, 0.2, &cfg)?;
    let base = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let premium = 100.0 * (sel.opf.cost - base.cost).max(0.0) / base.cost;
    println!("MTD premium at gamma >= 0.2 (eta'(0.9) ~ 0.9+ per Fig. 6a): {premium:.2}%");
    println!();
    println!("paper: undetected attacks can cost up to 28% (and trip lines), while");
    println!("the MTD premium stays in the low single digits — the insurance is cheap");
    println!("relative to the hedged risk.");
    Ok(())
}
