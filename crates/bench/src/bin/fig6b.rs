//! **Fig. 6(b)** — MTD effectiveness `η'(δ)` vs `γ(H_t, H'_t')` on the
//! IEEE 30-bus system (MATPOWER defaults), showing the design scales
//! beyond the 14-bus case.
//!
//! Usage: `fig6b [--sigma MW] [--attacks N] [--starts N] [--evals N]`

use gridmtd_bench::{paperconfig, report};
use gridmtd_core::{effectiveness, selection, MtdError};
use gridmtd_powergrid::cases;

fn main() -> Result<(), MtdError> {
    let cfg = paperconfig::config_from_args();
    report::banner(&format!(
        "Fig. 6(b): effectiveness vs gamma, IEEE 30-bus (sigma = {} MW)",
        cfg.noise_sigma_mw
    ));

    let net = cases::case30();
    let x_pre = selection::spread_pre_perturbation(&net, cfg.eta_max);
    let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg)?;
    let (_, ceiling) = selection::max_achievable_gamma(&net, &x_pre, &cfg)?;
    println!("attainable gamma ceiling: {ceiling:.3} rad (paper sweeps to 0.5)");
    println!();

    let deltas = [0.5, 0.8, 0.9, 0.95];
    let mut rows = Vec::new();
    let mut gamma_th = 0.05;
    while gamma_th <= ceiling + 1e-9 {
        match selection::select_mtd(&net, &x_pre, gamma_th, &cfg) {
            Ok(sel) => {
                let eval = effectiveness::evaluate_with_attacks(
                    &net,
                    &x_pre,
                    &sel.x_post,
                    &attacks,
                    &cfg,
                )?;
                let mut row = vec![report::f(gamma_th, 2), report::f(eval.gamma, 3)];
                for &d in &deltas {
                    row.push(report::f(eval.effectiveness(d), 3));
                }
                rows.push(row);
            }
            Err(MtdError::ThresholdUnreachable { .. }) => break,
            Err(e) => return Err(e),
        }
        gamma_th += 0.05;
    }
    report::table(
        &[
            "g_th",
            "g_ach",
            "eta(0.50)",
            "eta(0.80)",
            "eta(0.90)",
            "eta(0.95)",
        ],
        &rows,
    );
    println!();
    println!("paper (read from Fig. 6b): same monotone trend as the 14-bus system,");
    println!("with eta(0.5) already > 0.2 at small gamma.");
    Ok(())
}
