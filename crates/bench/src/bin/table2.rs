//! **Table II** — pre-perturbation power flows, generator dispatch and
//! OPF cost for the 4-bus system.
//!
//! Paper values: flows 126.56 / 173.44 / −43.44 / −26.56 MW, dispatch
//! (350, 150) MW, cost $1.15 × 10⁴.

use gridmtd_bench::report;
use gridmtd_opf::{solve_opf_nominal, OpfOptions};
use gridmtd_powergrid::cases;

fn main() {
    report::banner("Table II: pre-perturbation OPF, 4-bus system");
    let net = cases::case4();
    let sol = solve_opf_nominal(&net, &OpfOptions::default()).expect("feasible case");

    let row = vec![
        report::f(sol.flows[0], 2),
        report::f(sol.flows[1], 2),
        report::f(sol.flows[2], 2),
        report::f(sol.flows[3], 2),
        report::f(sol.dispatch[0], 2),
        report::f(sol.dispatch[1], 2),
        format!("{:.3e}", sol.cost),
    ];
    report::table(
        &[
            "Line1 (MW)",
            "Line2 (MW)",
            "Line3 (MW)",
            "Line4 (MW)",
            "Gen1 (MW)",
            "Gen2 (MW)",
            "Cost ($)",
        ],
        &[row],
    );
    println!();
    println!("paper: 126.56  173.44  -43.44  -26.56  350  150  1.15e4");
}
