//! Bench regression gate: compares a freshly measured
//! `GRIDMTD_BENCH_JSON` snapshot against a committed baseline and fails
//! (exit code 1) when a gated benchmark regresses beyond the allowed
//! ratio.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> <max_ratio> <bench-id>...
//! ```
//!
//! Both files hold one `{"bench":…,"mean_ns":…,"iters":…}` object per
//! line (the format the vendored criterion stand-in emits). Every named
//! bench id must be present in both files; `ratio = candidate/baseline`
//! must satisfy `ratio <= max_ratio`. Run machines differ, so the gate
//! is a coarse tripwire (the CI threshold is 2×), not a precision meter.

use std::collections::HashMap;
use std::process::ExitCode;

/// Parses one snapshot line of the form
/// `{"bench":"<id>","mean_ns":<float>,"iters":<int>}`.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let name = line.split("\"bench\":\"").nth(1)?.split('"').next()?;
    let mean = line
        .split("\"mean_ns\":")
        .nth(1)?
        .split([',', '}'])
        .next()?
        .trim()
        .parse::<f64>()
        .ok()?;
    Some((name.to_string(), mean))
}

/// Loads a snapshot file into `bench id → mean_ns`. Later lines win, so
/// re-running a bench into the same file updates its entry.
fn load_snapshot(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text.lines().filter_map(parse_line).collect())
}

fn run(args: &[String]) -> Result<(), String> {
    let [baseline_path, candidate_path, max_ratio, benches @ ..] = args else {
        return Err(
            "usage: bench_gate <baseline.json> <candidate.json> <max_ratio> <bench-id>...".into(),
        );
    };
    if benches.is_empty() {
        return Err("no gated bench ids given".into());
    }
    let max_ratio: f64 = max_ratio
        .parse()
        .map_err(|e| format!("bad max_ratio {max_ratio:?}: {e}"))?;
    let baseline = load_snapshot(baseline_path)?;
    let candidate = load_snapshot(candidate_path)?;

    let mut failures = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "bench", "base ns", "cand ns", "ratio"
    );
    for id in benches {
        let base = *baseline
            .get(id)
            .ok_or_else(|| format!("bench {id:?} missing from {baseline_path}"))?;
        let cand = *candidate
            .get(id)
            .ok_or_else(|| format!("bench {id:?} missing from {candidate_path}"))?;
        let ratio = cand / base;
        println!("{id:<40} {base:>12.0} {cand:>12.0} {ratio:>8.3}");
        if ratio > max_ratio {
            failures.push(format!("{id}: ratio {ratio:.3} > allowed {max_ratio}"));
        }
    }
    if failures.is_empty() {
        println!("bench gate passed (max allowed ratio {max_ratio})");
        Ok(())
    } else {
        Err(format!(
            "bench regression detected:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snapshot_lines() {
        let (name, mean) =
            parse_line("{\"bench\":\"dc_opf/case30\",\"mean_ns\":23551583.5,\"iters\":320}")
                .unwrap();
        assert_eq!(name, "dc_opf/case30");
        assert!((mean - 23_551_583.5).abs() < 1e-6);
        assert!(parse_line("").is_none());
        assert!(parse_line("not json at all").is_none());
    }

    #[test]
    fn gate_passes_and_fails_on_ratio() {
        let dir = std::env::temp_dir().join("gridmtd_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, "{\"bench\":\"a/b\",\"mean_ns\":100.0,\"iters\":1}\n").unwrap();
        std::fs::write(&cand, "{\"bench\":\"a/b\",\"mean_ns\":150.0,\"iters\":1}\n").unwrap();
        let args = |ratio: &str| {
            vec![
                base.to_str().unwrap().to_string(),
                cand.to_str().unwrap().to_string(),
                ratio.to_string(),
                "a/b".to_string(),
            ]
        };
        assert!(run(&args("2.0")).is_ok());
        assert!(run(&args("1.2")).is_err());
        // Missing bench id is an error, not a silent pass.
        let mut missing = args("2.0");
        missing[3] = "nope".into();
        assert!(run(&missing).is_err());
    }
}
