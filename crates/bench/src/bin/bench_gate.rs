//! Bench regression gate: compares a freshly measured
//! `GRIDMTD_BENCH_JSON` snapshot against a committed baseline and fails
//! (exit code 1) when a gated benchmark regresses beyond the allowed
//! ratio.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> <max_ratio> <bench-id>...
//! bench_gate --within <snapshot.json> <max_ratio> <bench-a> <bench-b>
//! ```
//!
//! The files hold one `{"bench":…,"mean_ns":…,"iters":…}` object per
//! line (the format the vendored criterion stand-in emits).
//!
//! * Cross-file mode: every named bench id must be present in both
//!   files; `ratio = candidate/baseline` must satisfy
//!   `ratio <= max_ratio`. Run machines differ, so this gate is a
//!   coarse tripwire (the CI threshold is 2×), not a precision meter.
//! * `--within` mode: compares two rows **of the same snapshot** —
//!   `mean(a) <= max_ratio * mean(b)`. Both rows come from one run on
//!   one machine, so tight ratios (e.g. the 1.05× session-vs-hoisted
//!   selection contract) are meaningful.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses one snapshot line of the form
/// `{"bench":"<id>","mean_ns":<float>,"iters":<int>}`.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let name = line.split("\"bench\":\"").nth(1)?.split('"').next()?;
    let mean = line
        .split("\"mean_ns\":")
        .nth(1)?
        .split([',', '}'])
        .next()?
        .trim()
        .parse::<f64>()
        .ok()?;
    Some((name.to_string(), mean))
}

/// Loads a snapshot file into `bench id → mean_ns`. Later lines win, so
/// re-running a bench into the same file updates its entry.
fn load_snapshot(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text.lines().filter_map(parse_line).collect())
}

/// `--within` mode: `mean(bench_a) <= max_ratio * mean(bench_b)` inside
/// one snapshot.
fn run_within(args: &[String]) -> Result<(), String> {
    let [snapshot_path, max_ratio, bench_a, bench_b] = args else {
        return Err(
            "usage: bench_gate --within <snapshot.json> <max_ratio> <bench-a> <bench-b>".into(),
        );
    };
    let max_ratio: f64 = max_ratio
        .parse()
        .map_err(|e| format!("bad max_ratio {max_ratio:?}: {e}"))?;
    let snapshot = load_snapshot(snapshot_path)?;
    let lookup = |id: &String| {
        snapshot
            .get(id)
            .copied()
            .ok_or_else(|| format!("bench {id:?} missing from {snapshot_path}"))
    };
    let a = lookup(bench_a)?;
    let b = lookup(bench_b)?;
    let ratio = a / b;
    println!(
        "{bench_a}: {a:.0} ns vs {bench_b}: {b:.0} ns — ratio {ratio:.3} (allowed {max_ratio})"
    );
    if ratio <= max_ratio {
        println!("bench gate passed");
        Ok(())
    } else {
        Err(format!(
            "{bench_a} is {ratio:.3}x of {bench_b}, allowed {max_ratio}"
        ))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("--within") {
        return run_within(&args[1..]);
    }
    let [baseline_path, candidate_path, max_ratio, benches @ ..] = args else {
        return Err(
            "usage: bench_gate <baseline.json> <candidate.json> <max_ratio> <bench-id>...".into(),
        );
    };
    if benches.is_empty() {
        return Err("no gated bench ids given".into());
    }
    let max_ratio: f64 = max_ratio
        .parse()
        .map_err(|e| format!("bad max_ratio {max_ratio:?}: {e}"))?;
    let baseline = load_snapshot(baseline_path)?;
    let candidate = load_snapshot(candidate_path)?;

    let mut failures = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "bench", "base ns", "cand ns", "ratio"
    );
    for id in benches {
        let base = *baseline
            .get(id)
            .ok_or_else(|| format!("bench {id:?} missing from {baseline_path}"))?;
        let cand = *candidate
            .get(id)
            .ok_or_else(|| format!("bench {id:?} missing from {candidate_path}"))?;
        let ratio = cand / base;
        println!("{id:<40} {base:>12.0} {cand:>12.0} {ratio:>8.3}");
        if ratio > max_ratio {
            failures.push(format!("{id}: ratio {ratio:.3} > allowed {max_ratio}"));
        }
    }
    if failures.is_empty() {
        println!("bench gate passed (max allowed ratio {max_ratio})");
        Ok(())
    } else {
        Err(format!(
            "bench regression detected:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snapshot_lines() {
        let (name, mean) =
            parse_line("{\"bench\":\"dc_opf/case30\",\"mean_ns\":23551583.5,\"iters\":320}")
                .unwrap();
        assert_eq!(name, "dc_opf/case30");
        assert!((mean - 23_551_583.5).abs() < 1e-6);
        assert!(parse_line("").is_none());
        assert!(parse_line("not json at all").is_none());
    }

    #[test]
    fn gate_passes_and_fails_on_ratio() {
        let dir = std::env::temp_dir().join("gridmtd_bench_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, "{\"bench\":\"a/b\",\"mean_ns\":100.0,\"iters\":1}\n").unwrap();
        std::fs::write(&cand, "{\"bench\":\"a/b\",\"mean_ns\":150.0,\"iters\":1}\n").unwrap();
        let args = |ratio: &str| {
            vec![
                base.to_str().unwrap().to_string(),
                cand.to_str().unwrap().to_string(),
                ratio.to_string(),
                "a/b".to_string(),
            ]
        };
        assert!(run(&args("2.0")).is_ok());
        assert!(run(&args("1.2")).is_err());
        // Missing bench id is an error, not a silent pass.
        let mut missing = args("2.0");
        missing[3] = "nope".into();
        assert!(run(&missing).is_err());
    }

    #[test]
    fn within_mode_compares_rows_of_one_snapshot() {
        let dir = std::env::temp_dir().join("gridmtd_bench_gate_within_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.json");
        std::fs::write(
            &snap,
            "{\"bench\":\"sess/x\",\"mean_ns\":102.0,\"iters\":1}\n\
             {\"bench\":\"hand/x\",\"mean_ns\":100.0,\"iters\":1}\n",
        )
        .unwrap();
        let args = |ratio: &str, a: &str| {
            vec![
                "--within".to_string(),
                snap.to_str().unwrap().to_string(),
                ratio.to_string(),
                a.to_string(),
                "hand/x".to_string(),
            ]
        };
        assert!(run(&args("1.05", "sess/x")).is_ok());
        assert!(run(&args("1.01", "sess/x")).is_err());
        assert!(run(&args("1.05", "nope/x")).is_err());
    }
}
