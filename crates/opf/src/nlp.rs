//! Derivative-free nonlinear minimization: box-constrained Nelder–Mead
//! with multistart.
//!
//! The SPA-constrained reactance selection (problem (4) of the paper) is
//! nonconvex; the authors solve it with MATLAB's `fmincon` under the
//! `MultiStart` wrapper. This module provides the equivalent machinery:
//! a robust Nelder–Mead simplex search projected onto box bounds, and a
//! multistart driver over random interior starting points. Inequality
//! constraints are handled by exterior penalty in the caller's objective
//! (see `gridmtd-core::selection`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for a single Nelder–Mead run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex objective spread.
    pub f_tol: f64,
    /// Initial simplex edge length as a fraction of each box width.
    ///
    /// Must be small relative to the basin structure of the objective:
    /// Nelder–Mead's reflection step doubles the simplex diameter, so a
    /// simplex spanning a sizeable fraction of the box can tunnel across
    /// objective barriers into a neighbouring basin. [`multistart`]
    /// relies on each run staying in the basin it started in.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> NelderMeadOptions {
        NelderMeadOptions {
            max_evals: 2_000,
            f_tol: 1e-9,
            initial_step: 0.05,
        }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizeResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

fn clamp_into(x: &mut [f64], lower: &[f64], upper: &[f64]) {
    for ((xi, &lo), &hi) in x.iter_mut().zip(lower.iter()).zip(upper.iter()) {
        *xi = xi.clamp(lo, hi);
    }
}

/// Minimizes `f` over the box `[lower, upper]` with Nelder–Mead started
/// from `x0` (projected into the box).
///
/// Dimensions where `lower == upper` are held fixed.
///
/// # Panics
///
/// Panics if the slice lengths differ or any bound pair is inverted.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    opts: &NelderMeadOptions,
) -> MinimizeResult {
    let n = x0.len();
    assert_eq!(lower.len(), n, "bounds length mismatch");
    assert_eq!(upper.len(), n, "bounds length mismatch");
    for i in 0..n {
        assert!(lower[i] <= upper[i], "inverted bounds at {i}");
    }

    // Free dimensions only; fixed ones are pinned at their bound.
    let free: Vec<usize> = (0..n).filter(|&i| upper[i] > lower[i]).collect();
    let mut base = x0.to_vec();
    clamp_into(&mut base, lower, upper);
    if free.is_empty() {
        let fv = f(&base);
        return MinimizeResult {
            x: base,
            f: fv,
            evals: 1,
        };
    }
    let d = free.len();

    let mut evals = 0usize;
    let eval = |pt_free: &[f64], f: &mut F, evals: &mut usize| -> f64 {
        let mut full = base.clone();
        for (k, &i) in free.iter().enumerate() {
            full[i] = pt_free[k].clamp(lower[i], upper[i]);
        }
        *evals += 1;
        f(&full)
    };

    // Initial simplex.
    let x0_free: Vec<f64> = free.iter().map(|&i| base[i]).collect();
    let mut simplex: Vec<Vec<f64>> = vec![x0_free.clone()];
    for k in 0..d {
        let i = free[k];
        let step = opts.initial_step * (upper[i] - lower[i]);
        let mut p = x0_free.clone();
        // Step toward whichever side has room.
        if p[k] + step <= upper[i] {
            p[k] += step;
        } else {
            p[k] -= step;
        }
        simplex.push(p);
    }
    let mut values: Vec<f64> = simplex
        .iter()
        .map(|p| eval(p, &mut f, &mut evals))
        .collect();

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    while evals < opts.max_evals {
        // Order simplex.
        let mut idx: Vec<usize> = (0..=d).collect();
        idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN objective"));
        let ordered: Vec<Vec<f64>> = idx.iter().map(|&i| simplex[i].clone()).collect();
        let ordered_vals: Vec<f64> = idx.iter().map(|&i| values[i]).collect();
        simplex = ordered;
        values = ordered_vals;

        if (values[d] - values[0]).abs() <= opts.f_tol * (1.0 + values[0].abs()) {
            break;
        }

        // Centroid of all but worst.
        let mut centroid = vec![0.0; d];
        for p in simplex.iter().take(d) {
            for k in 0..d {
                centroid[k] += p[k] / d as f64;
            }
        }

        // Reflection.
        let reflected: Vec<f64> = (0..d)
            .map(|k| centroid[k] + alpha * (centroid[k] - simplex[d][k]))
            .collect();
        let fr = eval(&reflected, &mut f, &mut evals);

        if fr < values[0] {
            // Expansion.
            let expanded: Vec<f64> = (0..d)
                .map(|k| centroid[k] + gamma * (reflected[k] - centroid[k]))
                .collect();
            let fe = eval(&expanded, &mut f, &mut evals);
            if fe < fr {
                simplex[d] = expanded;
                values[d] = fe;
            } else {
                simplex[d] = reflected;
                values[d] = fr;
            }
        } else if fr < values[d - 1] {
            simplex[d] = reflected;
            values[d] = fr;
        } else {
            // Contraction.
            let contracted: Vec<f64> = (0..d)
                .map(|k| centroid[k] + rho * (simplex[d][k] - centroid[k]))
                .collect();
            let fc = eval(&contracted, &mut f, &mut evals);
            if fc < values[d] {
                simplex[d] = contracted;
                values[d] = fc;
            } else {
                // Shrink toward the best vertex.
                let (best, rest) = simplex.split_first_mut().expect("non-empty simplex");
                for (v, vertex) in rest.iter_mut().enumerate() {
                    for (s, &b) in vertex.iter_mut().zip(best.iter()) {
                        *s = b + sigma * (*s - b);
                    }
                    values[v + 1] = eval(vertex, &mut f, &mut evals);
                }
            }
        }
    }

    // Return the best vertex as a full-dimension point.
    let best = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN objective"))
        .map(|(i, _)| i)
        .expect("non-empty simplex");
    let mut x = base.clone();
    for (k, &i) in free.iter().enumerate() {
        x[i] = simplex[best][k].clamp(lower[i], upper[i]);
    }
    MinimizeResult {
        f: values[best],
        x,
        evals,
    }
}

/// Multistart Nelder–Mead: `n_starts` runs from the nominal point plus
/// random interior points, returning the best result (the analogue of
/// fmincon + MultiStart in the paper's Section VII-A).
///
/// The independent starts fan out across scoped worker threads (see
/// [`crate::parallel`]). Each start `s` draws its point from its own RNG
/// stream seeded with `seed ⊕ s`, so the result is a pure function of
/// `(f, x0, bounds, n_starts, seed, opts)` — **bit-identical** for any
/// worker count, including serial, and independent of the order starts
/// happen to finish in. Ties between starts keep the lowest start index,
/// matching the serial scan.
///
/// For objectives that carry per-trajectory mutable state (warm-started
/// OPF solves), use [`multistart_stateful`].
///
/// # Panics
///
/// Panics if `n_starts == 0` or the bound slices mismatch.
pub fn multistart<F: Fn(&[f64]) -> f64 + Sync>(
    f: F,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    n_starts: usize,
    seed: u64,
    opts: &NelderMeadOptions,
) -> MinimizeResult {
    multistart_with_threads(
        f,
        x0,
        lower,
        upper,
        n_starts,
        seed,
        opts,
        crate::parallel::available_threads(),
    )
}

/// [`multistart`] with an explicit worker count (`threads <= 1` is the
/// serial reference execution; any other count returns identical bits).
#[allow(clippy::too_many_arguments)]
pub fn multistart_with_threads<F: Fn(&[f64]) -> f64 + Sync>(
    f: F,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    n_starts: usize,
    seed: u64,
    opts: &NelderMeadOptions,
    threads: usize,
) -> MinimizeResult {
    let f = &f;
    multistart_stateful_threads(
        |_start| move |x: &[f64]| f(x),
        x0,
        lower,
        upper,
        n_starts,
        seed,
        opts,
        threads,
    )
}

/// Multistart over *stateful* objectives: `build(s)` constructs the
/// objective for start `s`, and that objective may carry mutable state
/// across its own evaluations (e.g. an OPF context whose LP solver
/// warm-starts along the Nelder–Mead trajectory).
///
/// Because every start gets a freshly built objective, the per-start
/// evaluation sequences — and therefore the result — are identical
/// whether starts run serially or on worker threads.
///
/// # Panics
///
/// Panics if `n_starts == 0` or the bound slices mismatch.
pub fn multistart_stateful<O, B>(
    build: B,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    n_starts: usize,
    seed: u64,
    opts: &NelderMeadOptions,
) -> MinimizeResult
where
    B: Fn(usize) -> O + Sync,
    O: FnMut(&[f64]) -> f64,
{
    multistart_stateful_threads(
        build,
        x0,
        lower,
        upper,
        n_starts,
        seed,
        opts,
        crate::parallel::available_threads(),
    )
}

/// [`multistart_stateful`] with an explicit worker count.
#[allow(clippy::too_many_arguments)]
pub fn multistart_stateful_threads<O, B>(
    build: B,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    n_starts: usize,
    seed: u64,
    opts: &NelderMeadOptions,
    threads: usize,
) -> MinimizeResult
where
    B: Fn(usize) -> O + Sync,
    O: FnMut(&[f64]) -> f64,
{
    assert!(n_starts > 0, "need at least one start");
    assert_eq!(lower.len(), x0.len(), "bounds length mismatch");
    assert_eq!(upper.len(), x0.len(), "bounds length mismatch");

    // Start points first: start 0 is the warm start, start s > 0 draws
    // from its own stream seeded `seed ⊕ s`. Deriving the seed from the
    // start *index* — not from a shared sequential stream — is what
    // keeps serial and parallel runs (and any future start-count change
    // for the shared prefix) in exact agreement.
    let starts: Vec<Vec<f64>> = (0..n_starts)
        .map(|s| {
            if s == 0 {
                x0.to_vec()
            } else {
                // The per-start streams are golden-pinned (the fig9 and
                // tradeoff artifacts are byte-for-byte), and opf sits below
                // core so the seedstream mixer is out of reach. A collision
                // across starts costs only search diversity, never
                // correctness: every start minimizes the same objective.
                // gridmtd-lint: allow(raw-seed-mix) -- golden-pinned multistart streams; collisions cost diversity, not correctness
                let mut rng = StdRng::seed_from_u64(seed ^ s as u64);
                (0..x0.len())
                    .map(|i| {
                        if upper[i] > lower[i] {
                            rng.gen_range(lower[i]..upper[i])
                        } else {
                            lower[i]
                        }
                    })
                    .collect()
            }
        })
        .collect();

    let results = crate::parallel::par_map_threads(threads, &starts, |s, start| {
        let mut objective = build(s);
        nelder_mead(&mut objective, start, lower, upper, opts)
    });

    let total_evals: usize = results.iter().map(|r| r.evals).sum();
    let mut best: Option<MinimizeResult> = None;
    for r in results {
        // Strict improvement keeps the earliest start on ties, exactly
        // like the serial scan.
        if best.as_ref().is_none_or(|b| r.f < b.f) {
            best = Some(r);
        }
    }
    let mut b = best.expect("at least one start ran");
    b.evals = total_evals;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl_is_minimized() {
        let r = nelder_mead(
            |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
            &[0.0, 0.0],
            &[-5.0, -5.0],
            &[5.0, 5.0],
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-4);
        assert!(r.f < 1e-7);
    }

    #[test]
    fn respects_box_bounds() {
        // Unconstrained optimum at (10, 10), box caps at 2.
        let r = nelder_mead(
            |x| (x[0] - 10.0).powi(2) + (x[1] - 10.0).powi(2),
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[2.0, 2.0],
            &NelderMeadOptions::default(),
        );
        assert!(r.x.iter().all(|&v| v <= 2.0 + 1e-12));
        assert!((r.x[0] - 2.0).abs() < 1e-3 && (r.x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn fixed_dimensions_are_pinned() {
        let r = nelder_mead(
            |x| x[0].powi(2) + (x[1] - 3.0).powi(2),
            &[1.0, 0.0],
            &[0.5, -10.0],
            &[0.5, 10.0],
            &NelderMeadOptions::default(),
        );
        assert_eq!(r.x[0], 0.5);
        assert!((r.x[1] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn rosenbrock_2d_converges() {
        let opts = NelderMeadOptions {
            max_evals: 20_000,
            ..NelderMeadOptions::default()
        };
        let r = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            &[-5.0, -5.0],
            &[5.0, 5.0],
            &opts,
        );
        assert!(r.f < 1e-6, "f = {}", r.f);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well: local min near x=-1 (f=0.1), global near x=2 (f=0).
        let f = |x: &[f64]| {
            let a = (x[0] + 1.0).powi(2) + 0.1;
            let b = 3.0 * (x[0] - 2.0).powi(2);
            a.min(b)
        };
        // Single start from the basin of the local min gets stuck.
        let local = nelder_mead(f, &[-1.4], &[-3.0], &[3.0], &NelderMeadOptions::default());
        assert!((local.x[0] + 1.0).abs() < 0.05);
        // Multistart finds the global one.
        let global = multistart(
            f,
            &[-1.4],
            &[-3.0],
            &[3.0],
            12,
            7,
            &NelderMeadOptions::default(),
        );
        assert!((global.x[0] - 2.0).abs() < 0.05, "{:?}", global.x);
        assert!(global.f < 1e-6);
    }

    #[test]
    fn multistart_is_deterministic_per_seed() {
        let f = |x: &[f64]| x[0].sin() * (3.0 * x[0]).cos() + 0.1 * x[0] * x[0];
        let a = multistart(
            f,
            &[0.0],
            &[-6.0],
            &[6.0],
            8,
            42,
            &NelderMeadOptions::default(),
        );
        let b = multistart(
            f,
            &[0.0],
            &[-6.0],
            &[6.0],
            8,
            42,
            &NelderMeadOptions::default(),
        );
        assert_eq!(a.x, b.x);
        assert_eq!(a.f, b.f);
    }

    #[test]
    fn multistart_parallel_is_bit_identical_to_serial() {
        // The determinism contract: per-start seed streams make the
        // worker count unobservable in the result.
        let f = |x: &[f64]| {
            (x[0] - 0.7).powi(2) * (x[1] + 1.1).cos() + (3.0 * x[0]).sin() + 0.05 * x[1] * x[1]
        };
        let serial = multistart_with_threads(
            f,
            &[0.0, 0.0],
            &[-4.0, -4.0],
            &[4.0, 4.0],
            9,
            1234,
            &NelderMeadOptions::default(),
            1,
        );
        for threads in [2, 4, 16] {
            let parallel = multistart_with_threads(
                f,
                &[0.0, 0.0],
                &[-4.0, -4.0],
                &[4.0, 4.0],
                9,
                1234,
                &NelderMeadOptions::default(),
                threads,
            );
            assert!(
                serial
                    .x
                    .iter()
                    .zip(parallel.x.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}: {:?} vs {:?}",
                serial.x,
                parallel.x
            );
            assert_eq!(serial.f.to_bits(), parallel.f.to_bits());
            assert_eq!(serial.evals, parallel.evals);
        }
    }

    #[test]
    fn multistart_stateful_builds_one_objective_per_start() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let built = AtomicUsize::new(0);
        let r = multistart_stateful(
            |_s| {
                built.fetch_add(1, Ordering::Relaxed);
                let mut evals_here = 0usize; // per-start mutable state
                move |x: &[f64]| {
                    evals_here += 1;
                    (x[0] - 1.5).powi(2) + evals_here as f64 * 0.0
                }
            },
            &[0.0],
            &[-3.0],
            &[3.0],
            5,
            11,
            &NelderMeadOptions::default(),
        );
        assert_eq!(built.load(Ordering::Relaxed), 5);
        assert!((r.x[0] - 1.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_panics() {
        multistart(
            |x: &[f64]| x[0],
            &[0.0],
            &[0.0],
            &[1.0],
            0,
            0,
            &NelderMeadOptions::default(),
        );
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let mut count = 0usize;
        let opts = NelderMeadOptions {
            max_evals: 50,
            ..NelderMeadOptions::default()
        };
        let _ = nelder_mead(
            |x| {
                count += 1;
                x.iter().map(|v| v * v).sum()
            },
            &[1.0, 1.0, 1.0],
            &[-2.0; 3],
            &[2.0; 3],
            &opts,
        );
        // A few extra evals can occur inside the final shrink step.
        assert!(count <= 60, "count = {count}");
    }
}
