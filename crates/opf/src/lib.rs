//! Optimal power flow substrate for the `gridmtd` workspace.
//!
//! * [`lp`] — a self-contained dense two-phase simplex LP solver.
//! * [`dcopf`] — the DC optimal power flow of problem (1) of
//!   Lakshminarayana & Yau (DSN 2018), with piecewise-linear treatment of
//!   quadratic generator costs.
//! * [`nlp`] — box-constrained Nelder–Mead and multistart, the
//!   fmincon/MultiStart analogue used for reactance optimization
//!   (problem (4)) by the `gridmtd-core` crate. Multistart fans its
//!   independent starts across scoped threads with per-start RNG
//!   streams, so parallel results are bit-identical to serial.
//! * [`parallel`] — the scoped-thread fan-out helper shared by the
//!   optimizer and the evaluation pipelines upstack.
//!
//! The LP layer exposes a warm-startable engine ([`lp::LpSolver`] /
//! [`OpfContext`]): successive structurally identical solves reuse the
//! previous optimal basis and skip simplex Phase 1 — the hot-path
//! optimization behind `select_mtd`-style sweeps.
//!
//! # Example
//!
//! ```
//! use gridmtd_opf::dcopf::{solve_opf_nominal, OpfOptions};
//! use gridmtd_powergrid::cases;
//!
//! # fn main() -> Result<(), gridmtd_opf::dcopf::OpfError> {
//! let net = cases::case4();
//! let sol = solve_opf_nominal(&net, &OpfOptions::default())?;
//! assert!((sol.cost - 11_500.0).abs() < 1e-6); // Table II of the paper
//! # Ok(())
//! # }
//! ```

pub mod dcopf;
pub mod lbfgs;
pub mod lp;
pub mod nlp;
pub mod parallel;

pub use dcopf::{
    solve_opf, solve_opf_grad_with, solve_opf_nominal, solve_opf_with, OpfContext, OpfError,
    OpfOptions, OpfSolution,
};
pub use lbfgs::{lbfgs_box, multistart_lbfgs_threads, LbfgsOptions};
pub use lp::LpSolver;
pub use nlp::{
    multistart, multistart_stateful, multistart_stateful_threads, multistart_with_threads,
    nelder_mead, MinimizeResult, NelderMeadOptions,
};
