//! Dense two-phase simplex solver for linear programs.
//!
//! This is the LP engine under the DC optimal power flow (problem (1) of
//! the paper). It accepts the natural modelling form — bounded or free
//! variables, `≤`/`≥`/`=` constraints — converts internally to standard
//! form and solves with a dense two-phase simplex using Dantzig pricing
//! and a Bland's-rule fallback for anti-cycling.
//!
//! Problem sizes in this workspace are tiny by LP standards (≲ 200 rows),
//! so a dense tableau is the simplest robust choice.

use std::error::Error;
use std::fmt;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// A sparse linear constraint `Σ coeffs · x  (rel)  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors from LP construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// A constraint or objective references a variable index that was
    /// never declared.
    UnknownVariable(usize),
    /// A variable was declared with `lower > upper`.
    EmptyBound {
        /// Variable index.
        var: usize,
    },
    /// The simplex exceeded its iteration budget (indicates degeneracy or
    /// a modelling bug; not observed for the workspace's problems).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::UnknownVariable(v) => write!(f, "unknown variable index {v}"),
            LpError::EmptyBound { var } => write!(f, "variable {var} has lower > upper"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for LpError {}

/// Linear program: minimize `cᵀx` subject to bounds and linear
/// constraints.
///
/// # Example
///
/// ```
/// use gridmtd_opf::lp::{LpProblem, Relation};
///
/// # fn main() -> Result<(), gridmtd_opf::lp::LpError> {
/// // min -x - 2y  s.t.  x + y <= 4, 0 <= x,y <= 3
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(0.0, 3.0, -1.0);
/// let y = lp.add_var(0.0, 3.0, -2.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective - (-7.0)).abs() < 1e-9); // x=1, y=3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    obj: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    constraints: Vec<LinearConstraint>,
}

/// Solution of an LP.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable values, in declaration order.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Feasibility / pivot tolerance.
const TOL: f64 = 1e-9;

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> LpProblem {
        LpProblem::default()
    }

    /// Adds a variable with bounds `[lower, upper]` (either may be
    /// infinite) and objective coefficient `cost`; returns its index.
    pub fn add_var(&mut self, lower: f64, upper: f64, cost: f64) -> usize {
        self.lower.push(lower);
        self.upper.push(upper);
        self.obj.push(cost);
        self.obj.len() - 1
    }

    /// Number of declared variables.
    pub fn n_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint `Σ coeffs·x (rel) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) {
        self.constraints.push(LinearConstraint {
            coeffs,
            relation,
            rhs,
        });
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] / [`LpError::Unbounded`] per the problem.
    /// * [`LpError::UnknownVariable`] / [`LpError::EmptyBound`] for
    ///   modelling mistakes.
    /// * [`LpError::IterationLimit`] if simplex stalls (not expected).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let n = self.n_vars();
        for c in &self.constraints {
            for &(v, _) in &c.coeffs {
                if v >= n {
                    return Err(LpError::UnknownVariable(v));
                }
            }
        }
        for v in 0..n {
            if self.lower[v] > self.upper[v] {
                return Err(LpError::EmptyBound { var: v });
            }
        }

        // ---- Standardization ----------------------------------------
        // Map each original variable to standard-form columns:
        //   finite lower:      x = lo + y,        y >= 0 (+ row if upper finite)
        //   only finite upper: x = hi - y,        y >= 0
        //   free:              x = y+ - y-,       y± >= 0
        #[derive(Clone, Copy)]
        enum VarMap {
            Shifted { col: usize, lo: f64 },
            Flipped { col: usize, hi: f64 },
            Split { pos: usize, neg: usize },
        }
        let mut maps: Vec<VarMap> = Vec::with_capacity(n);
        let mut n_cols = 0usize;
        for v in 0..n {
            let (lo, hi) = (self.lower[v], self.upper[v]);
            if lo.is_finite() {
                maps.push(VarMap::Shifted { col: n_cols, lo });
                n_cols += 1;
            } else if hi.is_finite() {
                maps.push(VarMap::Flipped { col: n_cols, hi });
                n_cols += 1;
            } else {
                maps.push(VarMap::Split {
                    pos: n_cols,
                    neg: n_cols + 1,
                });
                n_cols += 2;
            }
        }

        // Rows: user constraints + upper-bound rows for doubly-bounded vars.
        struct Row {
            coeffs: Vec<(usize, f64)>, // standard-form columns
            rhs: f64,
            relation: Relation,
        }
        let mut rows: Vec<Row> = Vec::new();

        // helper: push (col, coef) for original var v with multiplier a,
        // returning the constant displaced to the RHS.
        let emit = |v: usize, a: f64, out: &mut Vec<(usize, f64)>| -> f64 {
            match maps[v] {
                VarMap::Shifted { col, lo } => {
                    out.push((col, a));
                    a * lo
                }
                VarMap::Flipped { col, hi } => {
                    out.push((col, -a));
                    a * hi
                }
                VarMap::Split { pos, neg } => {
                    out.push((pos, a));
                    out.push((neg, -a));
                    0.0
                }
            }
        };

        for c in &self.constraints {
            let mut coeffs = Vec::with_capacity(c.coeffs.len() + 2);
            let mut shift = 0.0;
            for &(v, a) in &c.coeffs {
                shift += emit(v, a, &mut coeffs);
            }
            rows.push(Row {
                coeffs,
                rhs: c.rhs - shift,
                relation: c.relation,
            });
        }
        for (&map, &upper) in maps.iter().zip(self.upper.iter()) {
            if let VarMap::Shifted { col, lo } = map {
                if upper.is_finite() {
                    rows.push(Row {
                        coeffs: vec![(col, 1.0)],
                        rhs: upper - lo,
                        relation: Relation::Le,
                    });
                }
            }
        }

        // Standard-form objective.
        let mut cost = vec![0.0; n_cols];
        let mut obj_const = 0.0;
        for (&map, &cv) in maps.iter().zip(self.obj.iter()) {
            if cv == 0.0 {
                continue;
            }
            match map {
                VarMap::Shifted { col, lo } => {
                    cost[col] += cv;
                    obj_const += cv * lo;
                }
                VarMap::Flipped { col, hi } => {
                    cost[col] -= cv;
                    obj_const += cv * hi;
                }
                VarMap::Split { pos, neg } => {
                    cost[pos] += cv;
                    cost[neg] -= cv;
                }
            }
        }

        // Slack/surplus columns, then ensure b >= 0 by row negation.
        let m = rows.len();
        let mut a = vec![vec![0.0; n_cols]; m]; // grown below
        let mut b = vec![0.0; m];
        let mut extra_cols = 0usize;
        for (i, row) in rows.iter().enumerate() {
            for &(col, coef) in &row.coeffs {
                a[i][col] += coef;
            }
            b[i] = row.rhs;
            if row.relation != Relation::Eq {
                extra_cols += 1;
            }
        }
        let total_cols = n_cols + extra_cols;
        for row in a.iter_mut() {
            row.resize(total_cols, 0.0);
        }
        let mut next = n_cols;
        for (i, row) in rows.iter().enumerate() {
            match row.relation {
                Relation::Le => {
                    a[i][next] = 1.0;
                    next += 1;
                }
                Relation::Ge => {
                    a[i][next] = -1.0;
                    next += 1;
                }
                Relation::Eq => {}
            }
        }
        for i in 0..m {
            if b[i] < 0.0 {
                b[i] = -b[i];
                for x in a[i].iter_mut() {
                    *x = -*x;
                }
            }
        }
        let mut cost_full = cost;
        cost_full.resize(total_cols, 0.0);

        let y = simplex_two_phase(&a, &b, &cost_full)?;

        // Map back to original variables.
        let mut x = vec![0.0; n];
        for v in 0..n {
            x[v] = match maps[v] {
                VarMap::Shifted { col, lo } => lo + y[col],
                VarMap::Flipped { col, hi } => hi - y[col],
                VarMap::Split { pos, neg } => y[pos] - y[neg],
            };
        }
        let objective = obj_const
            + cost_full
                .iter()
                .zip(y.iter())
                .map(|(c, yi)| c * yi)
                .sum::<f64>();
        Ok(LpSolution { x, objective })
    }
}

/// Two-phase simplex on standard form `min cᵀy, Ay = b, y ≥ 0, b ≥ 0`.
fn simplex_two_phase(a: &[Vec<f64>], b: &[f64], cost: &[f64]) -> Result<Vec<f64>, LpError> {
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { cost.len() };
    if m == 0 {
        // Bound-only problem: all-zero is optimal iff no negative costs
        // with unbounded columns; since every standard var has y ≥ 0 and
        // no constraints, any negative cost is unbounded.
        if cost.iter().any(|&c| c < -TOL) {
            return Err(LpError::Unbounded);
        }
        return Ok(vec![0.0; n]);
    }

    // Tableau: m rows × (n + m artificials + 1 rhs).
    let width = n + m + 1;
    let mut t = vec![vec![0.0; width]; m];
    let mut basis = vec![0usize; m];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = a[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][width - 1] = b[i];
        basis[i] = n + i;
    }

    // Phase 1: minimize sum of artificials.
    let mut phase1_cost = vec![0.0; width - 1];
    phase1_cost[n..n + m].fill(1.0);
    let p1 = run_simplex(&mut t, &mut basis, &phase1_cost, n + m)?;
    if p1 > 1e-7 {
        return Err(LpError::Infeasible);
    }
    // Drive remaining artificials out of the basis if possible.
    for i in 0..m {
        if basis[i] >= n {
            // find a non-artificial column with nonzero entry in row i
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot(&mut t, &mut basis, i, j);
            }
            // else: redundant row; harmless to leave the artificial at 0.
        }
    }

    // Phase 2 on original cost, artificials frozen at zero (never priced).
    let mut phase2_cost = vec![0.0; width - 1];
    phase2_cost[..n].copy_from_slice(&cost[..n]);
    run_simplex(&mut t, &mut basis, &phase2_cost, n)?;

    let mut y = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            y[basis[i]] = t[i][width - 1];
        }
    }
    Ok(y)
}

/// Runs simplex iterations on the tableau for the given cost vector,
/// pricing only columns `< n_price`. Returns the optimal objective value.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    n_price: usize,
) -> Result<f64, LpError> {
    let m = t.len();
    let width = t[0].len();
    let max_iters = 50_000;

    // Reduced costs are computed on demand: r_j = c_j - Σ_i c_{B(i)} t[i][j].
    let mut iter = 0;
    loop {
        iter += 1;
        if iter > max_iters {
            return Err(LpError::IterationLimit);
        }
        let bland = iter > 5_000; // anti-cycling fallback

        // Basic cost multipliers.
        let cb: Vec<f64> = basis.iter().map(|&j| cost[j]).collect();

        // Pricing.
        let mut enter: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..n_price {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                if cb[i] != 0.0 {
                    r -= cb[i] * t[i][j];
                }
            }
            if r < -TOL {
                if bland {
                    enter = Some(j);
                    break;
                }
                if r < best {
                    best = r;
                    enter = Some(j);
                }
            }
        }
        let Some(je) = enter else {
            // Optimal: return objective.
            let mut obj = 0.0;
            for i in 0..m {
                obj += cost[basis[i]] * t[i][width - 1];
            }
            return Ok(obj);
        };

        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = t[i][je];
            if aij > TOL {
                let ratio = t[i][width - 1] / aij;
                if ratio < best_ratio - TOL
                    || (bland
                        && (ratio - best_ratio).abs() <= TOL
                        && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(ie) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, ie, je);
    }
}

/// Pivot the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    for v in t[row].iter_mut() {
        *v /= p;
    }
    // Split-borrow the tableau around the pivot row so the elimination
    // loop can read it while mutating the other rows.
    let (above, rest) = t.split_at_mut(row);
    let (pivot_row, below) = rest.split_first_mut().expect("pivot row in range");
    for ti in above.iter_mut().chain(below.iter_mut()) {
        let f = ti[col];
        if f != 0.0 {
            for (tij, &pj) in ti.iter_mut().zip(pivot_row.iter()) {
                *tij -= f * pj;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0 → (2,6), obj 36.
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, f64::INFINITY, -3.0);
        let y = lp.add_var(0.0, f64::INFINITY, -5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -36.0, 1e-9);
        assert_close(sol.x[0], 2.0, 1e-9);
        assert_close(sol.x[1], 6.0, 1e-9);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x >= 4, y >= 2 → (8,2), obj 22.
        let mut lp = LpProblem::new();
        let x = lp.add_var(4.0, f64::INFINITY, 2.0);
        let y = lp.add_var(2.0, f64::INFINITY, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 22.0, 1e-9);
        assert_close(sol.x[0], 8.0, 1e-9);
    }

    #[test]
    fn free_variables_are_handled() {
        // min |style| problem: min x s.t. x >= -5 with free x via constraint.
        let mut lp = LpProblem::new();
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, -5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], -5.0, 1e-9);
    }

    #[test]
    fn flipped_variable_only_upper_bound() {
        // min -x s.t. x <= 7 (no lower bound on declaration, Ge constraint keeps bounded)
        let mut lp = LpProblem::new();
        let _x = lp.add_var(f64::NEG_INFINITY, 7.0, -1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 7.0, 1e-9);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(0.0, f64::INFINITY, -1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unknown_variable_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(5, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::UnknownVariable(5));
    }

    #[test]
    fn empty_bound_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(2.0, 1.0, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::EmptyBound { var: 0 })));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 3.0, 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-flavoured degenerate LP; checks anti-cycling.
        let mut lp = LpProblem::new();
        let v: Vec<usize> = (0..4)
            .map(|i| lp.add_var(0.0, f64::INFINITY, -(10f64.powi(3 - i))))
            .collect();
        for i in 0..4 {
            let mut coeffs = Vec::new();
            for (k, &vk) in v.iter().enumerate().take(i) {
                coeffs.push((vk, 2.0 * 10f64.powi((i - k) as i32)));
            }
            coeffs.push((v[i], 1.0));
            lp.add_constraint(coeffs, Relation::Le, 100f64.powi(i as i32));
        }
        let sol = lp.solve().unwrap();
        // Known optimum: last var at 100^3, objective -100^3.
        assert_close(sol.objective, -1_000_000.0, 1e-3);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // min -x s.t. 0.5x + 0.5x <= 3 → x = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, f64::INFINITY, -1.0);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], Relation::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 3.0, 1e-9);
    }

    #[test]
    fn transportation_problem() {
        // 2 plants (cap 30, 40) → 2 cities (demand 25, 35), costs
        // [[8,6],[9,4]]; optimum ships 25 from p1 to c1, 5 p1→c2? Let's
        // compute: min 8a+6b+9c+4d, a+b<=30, c+d<=40, a+c=25, b+d=35.
        // Cheapest: d=35 (4), remaining c1 demand 25 via a (8) → obj
        // 25*8+35*4 = 340.
        let mut lp = LpProblem::new();
        let a = lp.add_var(0.0, f64::INFINITY, 8.0);
        let b = lp.add_var(0.0, f64::INFINITY, 6.0);
        let c = lp.add_var(0.0, f64::INFINITY, 9.0);
        let d = lp.add_var(0.0, f64::INFINITY, 4.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Le, 30.0);
        lp.add_constraint(vec![(c, 1.0), (d, 1.0)], Relation::Le, 40.0);
        lp.add_constraint(vec![(a, 1.0), (c, 1.0)], Relation::Eq, 25.0);
        lp.add_constraint(vec![(b, 1.0), (d, 1.0)], Relation::Eq, 35.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 340.0, 1e-8);
    }

    #[test]
    fn solution_respects_all_bounds() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0, 2.0, -1.0);
        let y = lp.add_var(-3.0, -1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 0.5);
        let sol = lp.solve().unwrap();
        assert!(sol.x[0] >= 1.0 - 1e-9 && sol.x[0] <= 2.0 + 1e-9);
        assert!(sol.x[1] >= -3.0 - 1e-9 && sol.x[1] <= -1.0 + 1e-9);
        assert!(sol.x[0] + sol.x[1] <= 0.5 + 1e-9);
        // optimum: y=-3 frees x up to 2 → x=2? x+y = -1 <= 0.5 OK → x=2,y=-3.
        assert_close(sol.x[0], 2.0, 1e-9);
        assert_close(sol.x[1], -3.0, 1e-9);
    }
}
