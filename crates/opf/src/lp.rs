//! Dense two-phase simplex solver for linear programs, with a
//! warm-startable resolve engine.
//!
//! This is the LP engine under the DC optimal power flow (problem (1) of
//! the paper). It accepts the natural modelling form — bounded or free
//! variables, `≤`/`≥`/`=` constraints — converts internally to standard
//! form and solves with a dense two-phase simplex using Dantzig pricing
//! and a Bland's-rule fallback for anti-cycling.
//!
//! Problem sizes in this workspace are tiny by LP standards (≲ 500 rows),
//! so a dense tableau is the simplest robust choice.
//!
//! # Warm starts
//!
//! The selection optimizer (problem (4)) solves hundreds of structurally
//! identical LPs whose coefficients drift slowly along one Nelder–Mead
//! trajectory. [`LpSolver`] exploits this: it retains the optimal basis
//! of the previous solve and, when the next problem has the same shape,
//! re-factorizes that basis against the new data instead of running
//! Phase 1 from scratch. If the saved basis is still optimal the resolve
//! costs one basis LU factorization and one pricing pass; if it is
//! primal feasible but not optimal, only Phase-2 pivots run; if it is
//! mildly primal infeasible — the usual outcome of coefficient drift
//! along an optimizer trajectory — a warm Phase 1 plants artificial
//! columns only on the violated rows and repairs feasibility in a
//! handful of pivots. Only a stale basis the repair cannot rescue
//! (singular, genuinely infeasible, or past the iteration limit) falls
//! back to the cold two-phase path, so warm and cold solves always
//! agree on the optimum.

use std::error::Error;
use std::fmt;

use gridmtd_linalg::sparse::{SparseLu, SparseMatrix};
use gridmtd_linalg::{LinalgError, Lu, Matrix};

/// Row-count crossover for the warm-path basis factorization: at or
/// above this many constraint rows the basis matrix is factored with
/// the sparse Gilbert–Peierls LU (an LP basis for a large DC-OPF has a
/// handful of nonzeros per column, so the dense `O(m³)` factorization is
/// the dominant cost of a warm resolve); below it the dense LU wins on
/// constant factors and keeps the paper-scale cases byte-stable.
const SPARSE_BASIS_MIN_ROWS: usize = 100;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// A sparse linear constraint `Σ coeffs · x  (rel)  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// `(variable index, coefficient)` pairs; indices may repeat (summed).
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors from LP construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// A constraint or objective references a variable index that was
    /// never declared.
    UnknownVariable(usize),
    /// A variable was declared with `lower > upper`.
    EmptyBound {
        /// Variable index.
        var: usize,
    },
    /// The simplex exceeded its iteration budget (indicates degeneracy or
    /// a modelling bug; not observed for the workspace's problems).
    ///
    /// A warm-started [`LpSolver`] resolve never surfaces this directly:
    /// it falls back to a cold Phase-1 solve first.
    IterationLimit,
    /// The dual-multiplier recovery of [`LpSolver::solve_with_duals`]
    /// failed to factorize the optimal basis (not expected: the simplex
    /// just certified that basis).
    DualRecovery,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::UnknownVariable(v) => write!(f, "unknown variable index {v}"),
            LpError::EmptyBound { var } => write!(f, "variable {var} has lower > upper"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::DualRecovery => write!(f, "dual recovery failed on the optimal basis"),
        }
    }
}

impl Error for LpError {}

/// Linear program: minimize `cᵀx` subject to bounds and linear
/// constraints.
///
/// # Example
///
/// ```
/// use gridmtd_opf::lp::{LpProblem, Relation};
///
/// # fn main() -> Result<(), gridmtd_opf::lp::LpError> {
/// // min -x - 2y  s.t.  x + y <= 4, 0 <= x,y <= 3
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(0.0, 3.0, -1.0);
/// let y = lp.add_var(0.0, 3.0, -2.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective - (-7.0)).abs() < 1e-9); // x=1, y=3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    obj: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    constraints: Vec<LinearConstraint>,
}

/// Solution of an LP.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable values, in declaration order.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Feasibility / pivot tolerance.
const TOL: f64 = 1e-9;

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> LpProblem {
        LpProblem::default()
    }

    /// Adds a variable with bounds `[lower, upper]` (either may be
    /// infinite) and objective coefficient `cost`; returns its index.
    pub fn add_var(&mut self, lower: f64, upper: f64, cost: f64) -> usize {
        self.lower.push(lower);
        self.upper.push(upper);
        self.obj.push(cost);
        self.obj.len() - 1
    }

    /// Number of declared variables.
    pub fn n_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint `Σ coeffs·x (rel) rhs`. Repeated variable
    /// indices in `coeffs` are summed.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, relation: Relation, rhs: f64) {
        self.constraints.push(LinearConstraint {
            coeffs,
            relation,
            rhs,
        });
    }

    /// Replaces variable `var`'s objective coefficient (an
    /// objective-perturbation resolve point for [`LpSolver`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` was never declared.
    pub fn set_cost(&mut self, var: usize, cost: f64) {
        self.obj[var] = cost;
    }

    /// Replaces constraint `idx`'s right-hand side (an RHS-perturbation
    /// resolve point for [`LpSolver`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_rhs(&mut self, idx: usize, rhs: f64) {
        self.constraints[idx].rhs = rhs;
    }

    /// Replaces variable `var`'s bounds.
    ///
    /// Note for warm starts: switching a bound between finite and
    /// infinite changes the standard-form shape and silently degrades the
    /// next [`LpSolver::solve`] to a cold start; perturbing finite bounds
    /// keeps the warm path available.
    ///
    /// # Panics
    ///
    /// Panics if `var` was never declared.
    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Solves the program from a cold start.
    ///
    /// For repeated solves of structurally identical problems prefer a
    /// reused [`LpSolver`], which warm-starts from the previous basis.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] / [`LpError::Unbounded`] per the problem.
    /// * [`LpError::UnknownVariable`] / [`LpError::EmptyBound`] for
    ///   modelling mistakes.
    /// * [`LpError::IterationLimit`] if simplex stalls (not expected).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let std = standardize(self)?;
        let (y, _basis) = solve_cold(&std)?;
        Ok(extract_solution(self, &std, &y))
    }
}

// ---------------------------------------------------------------------
// Standardization (shared by cold and warm paths)
// ---------------------------------------------------------------------

/// Map from an original variable to its standard-form column(s).
#[derive(Clone, Copy)]
enum VarMap {
    /// `x = lo + y`, `y ≥ 0` (+ an upper-bound row if `hi` finite).
    Shifted { col: usize, lo: f64 },
    /// `x = hi − y`, `y ≥ 0` (only an upper bound is finite).
    Flipped { col: usize, hi: f64 },
    /// `x = y⁺ − y⁻`, `y± ≥ 0` (free variable).
    Split { pos: usize, neg: usize },
}

/// Standard-form image `min cᵀy, Ay = b, y ≥ 0, b ≥ 0` of an
/// [`LpProblem`] (structural + slack/surplus columns; no artificials).
///
/// For a fixed modelling structure (variable count, bound
/// finiteness pattern, constraint count and relations) the shape
/// `(rows, total_cols)` and the column indexing are invariant under any
/// perturbation of the numeric data — which is what makes a basis saved
/// from one solve meaningful for the next.
struct Standardized {
    maps: Vec<VarMap>,
    /// Dense rows over all `total_cols` columns.
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    /// Standard-form cost over all `total_cols` columns.
    cost: Vec<f64>,
    /// Constant displaced from the objective by the variable shifts.
    obj_const: f64,
    /// Structural + slack/surplus columns.
    total_cols: usize,
    /// ±1 per row: −1 where the `b ≥ 0` normalization negated the row
    /// (which also flips the sign of that row's dual multiplier).
    row_signs: Vec<f64>,
}

fn standardize(lp: &LpProblem) -> Result<Standardized, LpError> {
    let n = lp.n_vars();
    for c in &lp.constraints {
        for &(v, _) in &c.coeffs {
            if v >= n {
                return Err(LpError::UnknownVariable(v));
            }
        }
    }
    for v in 0..n {
        if lp.lower[v] > lp.upper[v] {
            return Err(LpError::EmptyBound { var: v });
        }
    }

    // Map each original variable to standard-form columns.
    let mut maps: Vec<VarMap> = Vec::with_capacity(n);
    let mut n_cols = 0usize;
    for v in 0..n {
        let (lo, hi) = (lp.lower[v], lp.upper[v]);
        if lo.is_finite() {
            maps.push(VarMap::Shifted { col: n_cols, lo });
            n_cols += 1;
        } else if hi.is_finite() {
            maps.push(VarMap::Flipped { col: n_cols, hi });
            n_cols += 1;
        } else {
            maps.push(VarMap::Split {
                pos: n_cols,
                neg: n_cols + 1,
            });
            n_cols += 2;
        }
    }

    // Rows: user constraints + upper-bound rows for doubly-bounded vars.
    struct Row {
        coeffs: Vec<(usize, f64)>, // standard-form columns
        rhs: f64,
        relation: Relation,
    }
    let mut rows: Vec<Row> = Vec::new();

    // helper: push (col, coef) for original var v with multiplier a,
    // returning the constant displaced to the RHS.
    let emit = |v: usize, a: f64, out: &mut Vec<(usize, f64)>| -> f64 {
        match maps[v] {
            VarMap::Shifted { col, lo } => {
                out.push((col, a));
                a * lo
            }
            VarMap::Flipped { col, hi } => {
                out.push((col, -a));
                a * hi
            }
            VarMap::Split { pos, neg } => {
                out.push((pos, a));
                out.push((neg, -a));
                0.0
            }
        }
    };

    for c in &lp.constraints {
        let mut coeffs = Vec::with_capacity(c.coeffs.len() + 2);
        let mut shift = 0.0;
        for &(v, a) in &c.coeffs {
            shift += emit(v, a, &mut coeffs);
        }
        rows.push(Row {
            coeffs,
            rhs: c.rhs - shift,
            relation: c.relation,
        });
    }
    for (&map, &upper) in maps.iter().zip(lp.upper.iter()) {
        if let VarMap::Shifted { col, lo } = map {
            if upper.is_finite() {
                rows.push(Row {
                    coeffs: vec![(col, 1.0)],
                    rhs: upper - lo,
                    relation: Relation::Le,
                });
            }
        }
    }

    // Standard-form objective.
    let mut cost = vec![0.0; n_cols];
    let mut obj_const = 0.0;
    for (&map, &cv) in maps.iter().zip(lp.obj.iter()) {
        if cv == 0.0 {
            continue;
        }
        match map {
            VarMap::Shifted { col, lo } => {
                cost[col] += cv;
                obj_const += cv * lo;
            }
            VarMap::Flipped { col, hi } => {
                cost[col] -= cv;
                obj_const += cv * hi;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += cv;
                cost[neg] -= cv;
            }
        }
    }

    // Slack/surplus columns, then ensure b >= 0 by row negation.
    // Duplicate column indices (e.g. repeated variables in a constraint)
    // accumulate via `+=` below.
    let m = rows.len();
    let mut a = vec![vec![0.0; n_cols]; m]; // grown below
    let mut b = vec![0.0; m];
    let mut extra_cols = 0usize;
    for (i, row) in rows.iter().enumerate() {
        for &(col, coef) in &row.coeffs {
            a[i][col] += coef;
        }
        b[i] = row.rhs;
        if row.relation != Relation::Eq {
            extra_cols += 1;
        }
    }
    let total_cols = n_cols + extra_cols;
    for row in a.iter_mut() {
        row.resize(total_cols, 0.0);
    }
    let mut next = n_cols;
    for (i, row) in rows.iter().enumerate() {
        match row.relation {
            Relation::Le => {
                a[i][next] = 1.0;
                next += 1;
            }
            Relation::Ge => {
                a[i][next] = -1.0;
                next += 1;
            }
            Relation::Eq => {}
        }
    }
    let mut row_signs = vec![1.0; m];
    for i in 0..m {
        if b[i] < 0.0 {
            b[i] = -b[i];
            for x in a[i].iter_mut() {
                *x = -*x;
            }
            row_signs[i] = -1.0;
        }
    }
    cost.resize(total_cols, 0.0);

    Ok(Standardized {
        maps,
        a,
        b,
        cost,
        obj_const,
        total_cols,
        row_signs,
    })
}

/// Maps a standard-form point `y` back to an [`LpSolution`] over the
/// original variables.
fn extract_solution(lp: &LpProblem, std: &Standardized, y: &[f64]) -> LpSolution {
    let n = lp.n_vars();
    let mut x = vec![0.0; n];
    for (xv, &map) in x.iter_mut().zip(std.maps.iter()) {
        *xv = match map {
            VarMap::Shifted { col, lo } => lo + y[col],
            VarMap::Flipped { col, hi } => hi - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
    }
    let objective = std.obj_const
        + std
            .cost
            .iter()
            .zip(y.iter())
            .map(|(c, yi)| c * yi)
            .sum::<f64>();
    LpSolution { x, objective }
}

// ---------------------------------------------------------------------
// Warm-startable solver
// ---------------------------------------------------------------------

/// A reusable simplex engine that warm-starts successive solves from the
/// previous optimal basis.
///
/// Feed it a sequence of structurally identical [`LpProblem`]s whose
/// objective, right-hand sides, bounds, or even constraint coefficients
/// drift between calls (the DC-OPF inner loop of problem (4) perturbs
/// the constraint matrix through the reactances). Correctness never
/// depends on the warm start: any mismatch — changed shape, singular or
/// primal-infeasible saved basis, or an iteration-limited resolve —
/// silently falls back to the cold two-phase solve.
///
/// # Example
///
/// ```
/// use gridmtd_opf::lp::{LpProblem, LpSolver, Relation};
///
/// # fn main() -> Result<(), gridmtd_opf::lp::LpError> {
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(0.0, 3.0, -1.0);
/// let y = lp.add_var(0.0, 3.0, -2.0);
/// lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
///
/// let mut solver = LpSolver::new();
/// let first = solver.solve(&lp)?; // cold
/// lp.set_rhs(0, 3.5); // perturb and resolve warm
/// let second = solver.solve(&lp)?;
/// assert!(second.objective > first.objective); // tighter ⇒ costlier
/// assert_eq!(solver.warm_solves(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpSolver {
    /// Saved optimal basis (standard-form column per row) and the shape
    /// `(rows, total_cols)` it belongs to.
    basis: Option<(Vec<usize>, (usize, usize))>,
    warm_solves: u64,
    cold_solves: u64,
}

impl LpSolver {
    /// Creates a solver with no saved basis (first solve is cold).
    pub fn new() -> LpSolver {
        LpSolver::default()
    }

    /// Drops the saved basis; the next solve runs cold.
    pub fn reset(&mut self) {
        self.basis = None;
    }

    /// Number of solves completed through the warm path.
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Number of solves completed through the cold two-phase path.
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }

    /// Solves `lp`, warm-starting from the previous solve's basis when
    /// the standard-form shapes match.
    ///
    /// # Errors
    ///
    /// Same contract as [`LpProblem::solve`]; warm and cold paths agree
    /// on the optimal objective.
    pub fn solve(&mut self, lp: &LpProblem) -> Result<LpSolution, LpError> {
        Ok(self.solve_inner(lp, false)?.0)
    }

    /// Solves `lp` and additionally recovers the dual multipliers
    /// (shadow prices) of the declared constraints, in declaration
    /// order: `duals[i] = ∂objective/∂rhsᵢ` at the optimum.
    ///
    /// For sensitivities through the constraint *coefficients* — the
    /// envelope-theorem use in the DC-OPF cost gradient — the same
    /// multipliers give `∂objective/∂t = Σᵢ duals[i]·(∂rhsᵢ/∂t −
    /// (∂aᵢ/∂t)ᵀx*)` while the optimal basis stays fixed. At a
    /// degenerate optimum the multipliers are one valid subgradient
    /// choice (the one priced by the final simplex basis).
    ///
    /// # Errors
    ///
    /// Same contract as [`LpSolver::solve`], plus
    /// [`LpError::DualRecovery`] if the certified basis cannot be
    /// re-factorized (not expected).
    pub fn solve_with_duals(&mut self, lp: &LpProblem) -> Result<(LpSolution, Vec<f64>), LpError> {
        let (sol, duals) = self.solve_inner(lp, true)?;
        Ok((sol, duals.unwrap_or_default()))
    }

    fn solve_inner(
        &mut self,
        lp: &LpProblem,
        want_duals: bool,
    ) -> Result<(LpSolution, Option<Vec<f64>>), LpError> {
        let std = standardize(lp)?;
        let shape = (std.a.len(), std.total_cols);

        if let Some((saved, saved_shape)) = self.basis.take() {
            if saved_shape == shape {
                match warm_resolve(&std, &saved)? {
                    WarmOutcome::Solved { y, basis, factor } => {
                        let duals = if want_duals {
                            Some(recover_duals(
                                &std,
                                &basis,
                                lp.n_constraints(),
                                factor.as_deref(),
                            )?)
                        } else {
                            None
                        };
                        self.basis = Some((basis, shape));
                        self.warm_solves += 1;
                        return Ok((extract_solution(lp, &std, &y), duals));
                    }
                    WarmOutcome::FallBackCold => {}
                }
            }
        }

        let (y, basis) = solve_cold(&std)?;
        let duals = if want_duals {
            Some(recover_duals(&std, &basis, lp.n_constraints(), None)?)
        } else {
            None
        };
        // Redundant rows can leave a zero-valued artificial basic; the
        // warm path knows to treat those slots as costless unit columns
        // (and re-checks that they stay at zero), so the basis is worth
        // saving either way — dropping it would force every later solve
        // of a problem with one redundant row back onto the cold
        // two-phase path.
        self.basis = Some((basis, shape));
        self.cold_solves += 1;
        Ok((extract_solution(lp, &std, &y), duals))
    }
}

/// Recovers the effective dual multipliers of the first `n_user`
/// (original) constraints at an optimal basis: solves `Bᵀλ = c_B` in
/// standard form and maps back through the `b ≥ 0` row negations
/// (`ŷᵢ = σᵢλᵢ`). A redundant row kept basic by a two-phase artificial
/// column contributes a unit column at zero cost, so its multiplier is
/// zero. Upper-bound rows appended after the user constraints are
/// solved for but not returned.
fn recover_duals(
    std: &Standardized,
    basis: &[usize],
    n_user: usize,
    factor: Option<&BasisFactor>,
) -> Result<Vec<f64>, LpError> {
    let m = std.a.len();
    debug_assert!(n_user <= m || m == 0);
    if m == 0 || basis.len() != m {
        // Bound-only problem (no rows), or a shape that cannot happen
        // from our own solve paths: every constraint prices at zero.
        return Ok(vec![0.0; n_user.min(m)]);
    }
    let fresh;
    let lu = match factor {
        Some(lu) => lu,
        None => {
            fresh = BasisFactor::factor(std, basis).map_err(|_| LpError::DualRecovery)?;
            &fresh
        }
    };
    let cb: Vec<f64> = basis
        .iter()
        .map(|&j| if j < std.total_cols { std.cost[j] } else { 0.0 })
        .collect();
    let lambda = lu
        .solve_transposed(&cb)
        .map_err(|_| LpError::DualRecovery)?;
    Ok(std
        .row_signs
        .iter()
        .zip(lambda.iter())
        .take(n_user)
        .map(|(&sign, &l)| sign * l)
        .collect())
}

/// Factorized basis matrix for the warm path: dense LU below
/// [`SPARSE_BASIS_MIN_ROWS`] rows, sparse Gilbert–Peierls LU above.
///
/// Both factorizations serve the primal solve (`B x_B = b`), the dual
/// solve (`Bᵀ y = c_B`) and, when pivots are still needed, the tableau
/// build `B⁻¹[A | b]` — via an explicit inverse in the dense case and
/// per-column sparse solves in the sparse case.
enum BasisFactor {
    Dense(Lu),
    Sparse(SparseLu),
}

impl BasisFactor {
    /// Factorizes the basis matrix. Column indices `≥ total_cols` are
    /// the two-phase artificial columns (unit columns `e_{j−n}`), which
    /// a cold basis may retain on redundant rows; both the warm path and
    /// the dual recovery accept them.
    fn factor(std: &Standardized, saved: &[usize]) -> Result<BasisFactor, LinalgError> {
        let m = std.a.len();
        let n = std.total_cols;
        if m >= SPARSE_BASIS_MIN_ROWS {
            // Stream the (row-major) constraint matrix once instead of
            // extracting basis columns with strided reads — at DC-OPF
            // sizes the strided scan is the dominant cost of a warm
            // resolve. The triplet order is irrelevant: the CSC build
            // buckets by column and sorts by row.
            let mut pos = vec![usize::MAX; n];
            let mut triplets = Vec::new();
            for (k, &j) in saved.iter().enumerate() {
                if j >= n {
                    triplets.push((j - n, k, 1.0));
                } else {
                    pos[j] = k;
                }
            }
            for (i, row) in std.a.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    if v != 0.0 && pos[j] != usize::MAX {
                        triplets.push((i, pos[j], v));
                    }
                }
            }
            let bmat = SparseMatrix::from_triplets(m, m, &triplets)?;
            Ok(BasisFactor::Sparse(SparseLu::factor(&bmat)?))
        } else {
            let bmat = Matrix::from_fn(m, m, |i, k| {
                let j = saved[k];
                if j >= n {
                    f64::from(u8::from(i == j - n))
                } else {
                    std.a[i][j]
                }
            });
            Ok(BasisFactor::Dense(Lu::factor(&bmat)?))
        }
    }

    fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match self {
            BasisFactor::Dense(lu) => lu.solve(b),
            BasisFactor::Sparse(lu) => lu.solve(b),
        }
    }

    fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match self {
            BasisFactor::Dense(lu) => lu.solve_transposed(b),
            BasisFactor::Sparse(lu) => lu.solve_transposed(b),
        }
    }

    /// Builds the tableau `B⁻¹[A | b]` in the saved basis, with the
    /// basic values `xb` copied verbatim into the last column — callers
    /// that need a feasible Phase-2 start clamp `xb` at zero first,
    /// while the warm Phase-1 repair needs the raw (possibly negative)
    /// values to locate the violated rows.
    fn tableau(&self, std: &Standardized, xb: &[f64]) -> Result<Vec<Vec<f64>>, LinalgError> {
        let m = std.a.len();
        let n = std.total_cols;
        let width = n + 1;
        let mut t = vec![vec![0.0; width]; m];
        match self {
            BasisFactor::Dense(lu) => {
                let binv = lu.inverse()?;
                for i in 0..m {
                    for k in 0..m {
                        let w = binv[(i, k)];
                        if w != 0.0 {
                            let (ti, ak) = (&mut t[i], &std.a[k]);
                            for (tij, &akj) in ti.iter_mut().zip(ak.iter()) {
                                *tij += w * akj;
                            }
                        }
                    }
                }
            }
            BasisFactor::Sparse(lu) => {
                // Transpose the constraint matrix once so each column
                // solve reads a contiguous slice instead of a strided
                // scan over the row-major storage.
                let mut at = vec![0.0; n * m];
                for (i, row) in std.a.iter().enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        at[j * m + i] = v;
                    }
                }
                for j in 0..n {
                    let col = lu.solve(&at[j * m..(j + 1) * m])?;
                    for (i, v) in col.into_iter().enumerate() {
                        t[i][j] = v;
                    }
                }
            }
        }
        for (ti, &xbi) in t.iter_mut().zip(xb.iter()) {
            ti[n] = xbi;
        }
        Ok(t)
    }
}

/// Result of a warm-start attempt.
enum WarmOutcome {
    /// Optimum reached from the saved basis.
    Solved {
        y: Vec<f64>,
        basis: Vec<usize>,
        /// The factorization of `basis` against the current data, when
        /// the resolve finished without pivoting away from it (the
        /// still-optimal fast path). Dual recovery reuses it instead of
        /// refactoring — at DC-OPF sizes the basis LU is the dominant
        /// cost of a warm solve, and this halves it. Boxed so the
        /// pivoting variants don't carry the factorization's footprint.
        factor: Option<Box<BasisFactor>>,
    },
    /// Saved basis unusable for this data; run the cold path.
    FallBackCold,
}

/// Attempts to resolve the standardized problem from `saved`:
///
/// 1. factorize the basis matrix `B` and check primal feasibility of
///    `x_B = B⁻¹b`; a *mildly infeasible* basis (the usual outcome of a
///    constraint-coefficient drift along an optimizer trajectory) is
///    repaired by a warm Phase 1 that plants artificial columns only on
///    the violated rows — a handful of pivots, against the hundreds the
///    cold all-artificial Phase 1 needs at DC-OPF sizes;
/// 2. price the nonbasic columns with the duals `y = B⁻ᵀc_B`; if no
///    reduced cost is negative the saved basis is still optimal and the
///    solve finishes without a single pivot;
/// 3. otherwise build the Phase-2 tableau `B⁻¹[A | b]` and pivot to
///    optimality (no Phase 1, artificials frozen at zero).
///
/// Unboundedness discovered from a feasible basis is genuine and is
/// propagated; an iteration-limited resolve or a Phase-1 residual
/// requests the cold fallback instead of erroring.
fn warm_resolve(std: &Standardized, saved: &[usize]) -> Result<WarmOutcome, LpError> {
    let m = std.a.len();
    let n = std.total_cols;
    if m == 0 || saved.len() != m || saved.iter().any(|&j| j >= n + m) {
        return Ok(WarmOutcome::FallBackCold);
    }
    // Injection point for the chaos matrix: forcing the fallback here
    // must leave the returned solution bit-identical (the cold path is
    // the certifier the warm path is pinned against).
    if gridmtd_faults::point!("opf.lp.warm_resolve") {
        return Ok(WarmOutcome::FallBackCold);
    }

    let Ok(lu) = BasisFactor::factor(std, saved) else {
        return Ok(WarmOutcome::FallBackCold); // singular basis
    };
    let Ok(xb) = lu.solve(&std.b) else {
        return Ok(WarmOutcome::FallBackCold);
    };
    // Primal infeasible for the new data: repair with a warm Phase 1.
    if xb.iter().any(|&v| v < -1e-7) {
        return warm_repair(std, &lu, saved, &xb);
    }
    // A retained artificial column (index ≥ n) marks a row that was
    // redundant when the basis was certified. It may stay basic only at
    // value zero: a nonzero value would mean the row is no longer
    // redundant under the new data and the "solution" would satisfy it
    // with a variable that does not exist in the real problem.
    if saved
        .iter()
        .zip(xb.iter())
        .any(|(&j, &v)| j >= n && v.abs() > 1e-7)
    {
        return Ok(WarmOutcome::FallBackCold);
    }

    // Duals and reduced costs: r_j = c_j − yᵀa_j, with the dual solve
    // `Bᵀy = c_B` reusing the factorization of B (artificials are
    // costless placeholders).
    let cb: Vec<f64> = saved
        .iter()
        .map(|&j| if j < n { std.cost[j] } else { 0.0 })
        .collect();
    let Ok(dual) = lu.solve_transposed(&cb) else {
        return Ok(WarmOutcome::FallBackCold);
    };
    let mut in_basis = vec![false; n];
    for &j in saved {
        if j < n {
            in_basis[j] = true;
        }
    }
    let mut still_optimal = true;
    for (j, &basic) in in_basis.iter().enumerate() {
        if basic {
            continue;
        }
        let mut r = std.cost[j];
        for (&di, row) in dual.iter().zip(std.a.iter()) {
            if di != 0.0 {
                r -= di * row[j];
            }
        }
        if r < -TOL {
            still_optimal = false;
            break;
        }
    }
    if still_optimal {
        let mut y = vec![0.0; n];
        for (k, &j) in saved.iter().enumerate() {
            if j < n {
                y[j] = xb[k].max(0.0);
            }
        }
        return Ok(WarmOutcome::Solved {
            y,
            basis: saved.to_vec(),
            factor: Some(Box::new(lu)),
        });
    }

    // Saved basis is feasible but no longer optimal: express the tableau
    // in that basis (t = B⁻¹[A | b]) and run Phase-2 pivots only. The
    // basic values are clamped at zero (the feasibility check above
    // bounds them at −1e-7).
    let xb_clamped: Vec<f64> = xb.iter().map(|&v| v.max(0.0)).collect();
    let Ok(t) = lu.tableau(std, &xb_clamped) else {
        return Ok(WarmOutcome::FallBackCold);
    };
    let mut t = t;
    let width = n + 1;
    let mut basis = saved.to_vec();
    // Pad the cost vector so retained artificials (basis indices ≥ n)
    // price as the costless placeholders they are.
    let mut cost = vec![0.0; n + m];
    cost[..n].copy_from_slice(&std.cost);
    match run_simplex(&mut t, &mut basis, &cost, n) {
        Ok(_) => {
            let mut y = vec![0.0; n];
            for i in 0..m {
                if basis[i] < n {
                    y[basis[i]] = t[i][width - 1];
                }
            }
            Ok(WarmOutcome::Solved {
                y,
                basis,
                factor: None,
            })
        }
        // A stalled warm resolve is recoverable: retry cold.
        Err(LpError::IterationLimit) => Ok(WarmOutcome::FallBackCold),
        // Unbounded from a feasible basis is a property of the problem.
        Err(e) => Err(e),
    }
}

/// Warm Phase-1 repair of a primal-infeasible saved basis: negates the
/// violated rows of the tableau `B⁻¹[A | b]`, plants one artificial unit
/// column on each, and drives their sum to zero starting from the saved
/// basis — the infeasibilities of an optimizer-trajectory resolve are
/// few and shallow, so this converges in a handful of pivots where the
/// cold path rebuilds feasibility from `m` artificials. Phase 2 then
/// continues on the repaired basis as usual.
///
/// Falls back cold when the saved basis already carries legacy
/// artificials (their index space would collide with the repair
/// columns), when Phase 1 cannot close the gap (the problem may be
/// genuinely infeasible — the cold path is the certifier), or when a
/// repair artificial survives in the basis.
fn warm_repair(
    std: &Standardized,
    lu: &BasisFactor,
    saved: &[usize],
    xb: &[f64],
) -> Result<WarmOutcome, LpError> {
    let m = std.a.len();
    let n = std.total_cols;
    if saved.iter().any(|&j| j >= n) {
        return Ok(WarmOutcome::FallBackCold);
    }
    // Injection point: a repair that gives up must degrade to the cold
    // path with a bit-identical solution, never a wrong answer.
    if gridmtd_faults::point!("opf.lp.warm_repair") {
        return Ok(WarmOutcome::FallBackCold);
    }
    let Ok(mut t) = lu.tableau(std, xb) else {
        return Ok(WarmOutcome::FallBackCold);
    };
    let neg_rows: Vec<usize> = (0..m).filter(|&i| t[i][n] < 0.0).collect();
    let n_art = neg_rows.len();
    let width = n + n_art + 1;
    let mut basis = saved.to_vec();
    for row in t.iter_mut() {
        let rhs = row[n];
        row.resize(width, 0.0);
        row[n] = 0.0;
        row[width - 1] = rhs;
    }
    for (a, &i) in neg_rows.iter().enumerate() {
        for v in t[i].iter_mut() {
            *v = -*v;
        }
        t[i][n + a] = 1.0;
        basis[i] = n + a;
    }

    // Phase 1 on the repair artificials only.
    let mut p1_cost = vec![0.0; width - 1];
    for slot in p1_cost.iter_mut().skip(n) {
        *slot = 1.0;
    }
    match run_simplex(&mut t, &mut basis, &p1_cost, n + n_art) {
        Ok(p1) if p1 <= 1e-7 => {}
        Ok(_) | Err(_) => return Ok(WarmOutcome::FallBackCold),
    }
    // Drive zero-valued artificials out of the basis where possible.
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot(&mut t, &mut basis, i, j);
            }
        }
    }
    // A surviving artificial lives in the repair index space, which the
    // next solve's `BasisFactor` would misread as a unit row column:
    // don't let it escape this function.
    if basis.iter().any(|&j| j >= n) {
        return Ok(WarmOutcome::FallBackCold);
    }

    let mut p2_cost = vec![0.0; width - 1];
    p2_cost[..n].copy_from_slice(&std.cost);
    match run_simplex(&mut t, &mut basis, &p2_cost, n) {
        Ok(_) => {
            let mut y = vec![0.0; n];
            for i in 0..m {
                if basis[i] < n {
                    y[basis[i]] = t[i][width - 1];
                }
            }
            Ok(WarmOutcome::Solved {
                y,
                basis,
                factor: None,
            })
        }
        Err(LpError::IterationLimit) => Ok(WarmOutcome::FallBackCold),
        Err(e) => Err(e),
    }
}

/// Cold two-phase solve of a standardized problem; returns the optimal
/// standard-form point and its basis.
fn solve_cold(std: &Standardized) -> Result<(Vec<f64>, Vec<usize>), LpError> {
    simplex_two_phase(&std.a, &std.b, &std.cost)
}

/// Two-phase simplex on standard form `min cᵀy, Ay = b, y ≥ 0, b ≥ 0`.
/// Returns the optimal point and the final basis (which may contain
/// artificial column indices `≥ n` for redundant rows).
fn simplex_two_phase(
    a: &[Vec<f64>],
    b: &[f64],
    cost: &[f64],
) -> Result<(Vec<f64>, Vec<usize>), LpError> {
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { cost.len() };
    if m == 0 {
        // Bound-only problem: all-zero is optimal iff no negative costs
        // with unbounded columns; since every standard var has y ≥ 0 and
        // no constraints, any negative cost is unbounded.
        if cost.iter().any(|&c| c < -TOL) {
            return Err(LpError::Unbounded);
        }
        return Ok((vec![0.0; n], Vec::new()));
    }

    // Tableau: m rows × (n + m artificials + 1 rhs).
    let width = n + m + 1;
    let mut t = vec![vec![0.0; width]; m];
    let mut basis = vec![0usize; m];
    for i in 0..m {
        for j in 0..n {
            t[i][j] = a[i][j];
        }
        t[i][n + i] = 1.0;
        t[i][width - 1] = b[i];
        basis[i] = n + i;
    }

    // Phase 1: minimize sum of artificials.
    let mut phase1_cost = vec![0.0; width - 1];
    phase1_cost[n..n + m].fill(1.0);
    let p1 = run_simplex(&mut t, &mut basis, &phase1_cost, n + m)?;
    if p1 > 1e-7 {
        return Err(LpError::Infeasible);
    }
    // Drive remaining artificials out of the basis if possible.
    for i in 0..m {
        if basis[i] >= n {
            // find a non-artificial column with nonzero entry in row i
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot(&mut t, &mut basis, i, j);
            }
            // else: redundant row; harmless to leave the artificial at 0.
        }
    }

    // Phase 2 on original cost, artificials frozen at zero (never priced).
    let mut phase2_cost = vec![0.0; width - 1];
    phase2_cost[..n].copy_from_slice(&cost[..n]);
    run_simplex(&mut t, &mut basis, &phase2_cost, n)?;

    let mut y = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            y[basis[i]] = t[i][width - 1];
        }
    }
    Ok((y, basis))
}

/// Runs simplex iterations on the tableau for the given cost vector,
/// pricing only columns `< n_price`. Returns the optimal objective value.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    n_price: usize,
) -> Result<f64, LpError> {
    let m = t.len();
    let width = t[0].len();
    let max_iters = 50_000;

    // Reduced costs are computed on demand: r_j = c_j - Σ_i c_{B(i)} t[i][j].
    let mut iter = 0;
    loop {
        iter += 1;
        if iter > max_iters {
            return Err(LpError::IterationLimit);
        }
        let bland = iter > 5_000; // anti-cycling fallback

        // Basic cost multipliers.
        let cb: Vec<f64> = basis.iter().map(|&j| cost[j]).collect();

        // Pricing.
        let mut enter: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..n_price {
            if basis.contains(&j) {
                continue;
            }
            let mut r = cost[j];
            for i in 0..m {
                if cb[i] != 0.0 {
                    r -= cb[i] * t[i][j];
                }
            }
            if r < -TOL {
                if bland {
                    enter = Some(j);
                    break;
                }
                if r < best {
                    best = r;
                    enter = Some(j);
                }
            }
        }
        let Some(je) = enter else {
            // Optimal: return objective.
            let mut obj = 0.0;
            for i in 0..m {
                obj += cost[basis[i]] * t[i][width - 1];
            }
            return Ok(obj);
        };

        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = t[i][je];
            if aij > TOL {
                let ratio = t[i][width - 1] / aij;
                if ratio < best_ratio - TOL
                    || (bland
                        && (ratio - best_ratio).abs() <= TOL
                        && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(ie) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, ie, je);
    }
}

/// Pivot the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    for v in t[row].iter_mut() {
        *v /= p;
    }
    // Split-borrow the tableau around the pivot row so the elimination
    // loop can read it while mutating the other rows.
    let (above, rest) = t.split_at_mut(row);
    let (pivot_row, below) = rest.split_first_mut().expect("pivot row in range");
    for ti in above.iter_mut().chain(below.iter_mut()) {
        let f = ti[col];
        if f != 0.0 {
            for (tij, &pj) in ti.iter_mut().zip(pivot_row.iter()) {
                *tij -= f * pj;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0 → (2,6), obj 36.
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, f64::INFINITY, -3.0);
        let y = lp.add_var(0.0, f64::INFINITY, -5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -36.0, 1e-9);
        assert_close(sol.x[0], 2.0, 1e-9);
        assert_close(sol.x[1], 6.0, 1e-9);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x >= 4, y >= 2 → (8,2), obj 22.
        let mut lp = LpProblem::new();
        let x = lp.add_var(4.0, f64::INFINITY, 2.0);
        let y = lp.add_var(2.0, f64::INFINITY, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 22.0, 1e-9);
        assert_close(sol.x[0], 8.0, 1e-9);
    }

    #[test]
    fn free_variables_are_handled() {
        // min |style| problem: min x s.t. x >= -5 with free x via constraint.
        let mut lp = LpProblem::new();
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, -5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], -5.0, 1e-9);
    }

    #[test]
    fn flipped_variable_only_upper_bound() {
        // min -x s.t. x <= 7 (no lower bound on declaration, Ge constraint keeps bounded)
        let mut lp = LpProblem::new();
        let _x = lp.add_var(f64::NEG_INFINITY, 7.0, -1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 7.0, 1e-9);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(0.0, f64::INFINITY, -1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn unknown_variable_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(5, 1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::UnknownVariable(5));
    }

    #[test]
    fn empty_bound_is_detected() {
        let mut lp = LpProblem::new();
        let _x = lp.add_var(2.0, 1.0, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::EmptyBound { var: 0 })));
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 3.0, 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-flavoured degenerate LP; checks anti-cycling.
        let mut lp = LpProblem::new();
        let v: Vec<usize> = (0..4)
            .map(|i| lp.add_var(0.0, f64::INFINITY, -(10f64.powi(3 - i))))
            .collect();
        for i in 0..4 {
            let mut coeffs = Vec::new();
            for (k, &vk) in v.iter().enumerate().take(i) {
                coeffs.push((vk, 2.0 * 10f64.powi((i - k) as i32)));
            }
            coeffs.push((v[i], 1.0));
            lp.add_constraint(coeffs, Relation::Le, 100f64.powi(i as i32));
        }
        let sol = lp.solve().unwrap();
        // Known optimum: last var at 100^3, objective -100^3.
        assert_close(sol.objective, -1_000_000.0, 1e-3);
    }

    #[test]
    fn duplicate_coefficients_are_summed() {
        // min -x s.t. 0.5x + 0.5x <= 3 → x = 3.
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, f64::INFINITY, -1.0);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], Relation::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], 3.0, 1e-9);
    }

    #[test]
    fn duplicate_coefficients_are_summed_for_free_variables() {
        // A free variable standardizes to a split pair (y⁺, y⁻); repeated
        // indices must accumulate on both columns. min x s.t.
        // 0.5x + 0.5x >= -4, x <= 0 (via second constraint) → x = -4.
        let mut lp = LpProblem::new();
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], Relation::Ge, -4.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.x[0], -4.0, 1e-9);
        // And the duplicate-summed constraint is honoured warm too.
        let mut solver = LpSolver::new();
        let warm_seed = solver.solve(&lp).unwrap();
        assert_close(warm_seed.objective, -4.0, 1e-9);
        lp.set_rhs(0, -3.0);
        let resolved = solver.solve(&lp).unwrap();
        assert_close(resolved.x[0], -3.0, 1e-9);
    }

    #[test]
    fn transportation_problem() {
        // 2 plants (cap 30, 40) → 2 cities (demand 25, 35), costs
        // [[8,6],[9,4]]; optimum ships 25 from p1 to c1, 5 p1→c2? Let's
        // compute: min 8a+6b+9c+4d, a+b<=30, c+d<=40, a+c=25, b+d=35.
        // Cheapest: d=35 (4), remaining c1 demand 25 via a (8) → obj
        // 25*8+35*4 = 340.
        let mut lp = LpProblem::new();
        let a = lp.add_var(0.0, f64::INFINITY, 8.0);
        let b = lp.add_var(0.0, f64::INFINITY, 6.0);
        let c = lp.add_var(0.0, f64::INFINITY, 9.0);
        let d = lp.add_var(0.0, f64::INFINITY, 4.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Le, 30.0);
        lp.add_constraint(vec![(c, 1.0), (d, 1.0)], Relation::Le, 40.0);
        lp.add_constraint(vec![(a, 1.0), (c, 1.0)], Relation::Eq, 25.0);
        lp.add_constraint(vec![(b, 1.0), (d, 1.0)], Relation::Eq, 35.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 340.0, 1e-8);
    }

    #[test]
    fn solution_respects_all_bounds() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(1.0, 2.0, -1.0);
        let y = lp.add_var(-3.0, -1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 0.5);
        let sol = lp.solve().unwrap();
        assert!(sol.x[0] >= 1.0 - 1e-9 && sol.x[0] <= 2.0 + 1e-9);
        assert!(sol.x[1] >= -3.0 - 1e-9 && sol.x[1] <= -1.0 + 1e-9);
        assert!(sol.x[0] + sol.x[1] <= 0.5 + 1e-9);
        // optimum: y=-3 frees x up to 2 → x=2? x+y = -1 <= 0.5 OK → x=2,y=-3.
        assert_close(sol.x[0], 2.0, 1e-9);
        assert_close(sol.x[1], -3.0, 1e-9);
    }

    // ---- LpSolver warm-start behaviour --------------------------------

    /// A small transportation-flavoured LP whose optimum sits strictly
    /// inside the capacity bounds, so modest RHS drift keeps the basis
    /// reusable; used by several warm-start tests.
    fn warmable_lp() -> LpProblem {
        let mut lp = LpProblem::new();
        let a = lp.add_var(0.0, 25.0, 8.0);
        let b = lp.add_var(0.0, 25.0, 6.0);
        let c = lp.add_var(0.0, 30.0, 9.0);
        let d = lp.add_var(0.0, 30.0, 4.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Le, 30.0);
        lp.add_constraint(vec![(c, 1.0), (d, 1.0)], Relation::Le, 40.0);
        lp.add_constraint(vec![(a, 1.0), (c, 1.0)], Relation::Eq, 20.0);
        lp.add_constraint(vec![(b, 1.0), (d, 1.0)], Relation::Eq, 25.0);
        lp
    }

    #[test]
    fn warm_resolve_matches_cold_after_rhs_perturbation() {
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        assert_eq!(solver.cold_solves(), 1);
        for (demand1, demand2) in [(21.0, 26.0), (22.5, 24.0), (19.0, 27.0), (23.0, 25.5)] {
            lp.set_rhs(2, demand1);
            lp.set_rhs(3, demand2);
            let warm = solver.solve(&lp).unwrap();
            let cold = lp.solve().unwrap();
            assert_close(warm.objective, cold.objective, 1e-9);
        }
        assert!(solver.warm_solves() >= 3, "warm path should engage");
    }

    #[test]
    fn warm_resolve_matches_cold_after_objective_perturbation() {
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        // Flip the merit order so the optimal basis genuinely changes.
        lp.set_cost(3, 12.0);
        lp.set_cost(0, 3.0);
        let warm = solver.solve(&lp).unwrap();
        let cold = lp.solve().unwrap();
        assert_close(warm.objective, cold.objective, 1e-9);
        assert_eq!(solver.warm_solves(), 1);
    }

    #[test]
    fn warm_resolve_matches_cold_after_bound_perturbation() {
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        lp.set_bounds(3, 0.0, 22.0); // clamp the cheap route
        let warm = solver.solve(&lp).unwrap();
        let cold = lp.solve().unwrap();
        assert_close(warm.objective, cold.objective, 1e-9);
    }

    #[test]
    fn unchanged_problem_resolves_without_pivots() {
        let lp = warmable_lp();
        let mut solver = LpSolver::new();
        let first = solver.solve(&lp).unwrap();
        let second = solver.solve(&lp).unwrap();
        assert_close(first.objective, second.objective, 1e-12);
        assert_eq!(solver.warm_solves(), 1);
        assert_eq!(solver.cold_solves(), 1);
    }

    #[test]
    fn shape_change_degrades_to_cold() {
        let lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        // A structurally different problem must not try the stale basis.
        let mut other = LpProblem::new();
        let x = other.add_var(0.0, 5.0, 1.0);
        other.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solver.solve(&other).unwrap();
        assert_close(sol.x[0], 2.0, 1e-9);
        assert_eq!(solver.cold_solves(), 2);
        assert_eq!(solver.warm_solves(), 0);
    }

    #[test]
    fn warm_start_reports_infeasibility_via_cold_path() {
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        lp.set_rhs(2, 60.0); // demand beyond both plant capacities
        assert_eq!(solver.solve(&lp).unwrap_err(), LpError::Infeasible);
        // ...and the solver recovers on the next solvable instance.
        lp.set_rhs(2, 20.0);
        let sol = solver.solve(&lp).unwrap();
        assert_close(sol.objective, lp.solve().unwrap().objective, 1e-9);
    }

    #[test]
    fn primal_infeasible_basis_is_repaired_warm() {
        // Push demand 1 past variable `a`'s upper bound: the saved basis
        // prices a = 32 against the bound row a ≤ 25, so its slack goes
        // negative and the warm Phase-1 repair must re-route the excess
        // through plant 2 instead of falling back to a cold solve.
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        assert_eq!(solver.cold_solves(), 1);
        lp.set_rhs(2, 32.0);
        let warm = solver.solve(&lp).unwrap();
        let cold = lp.solve().unwrap();
        assert_close(warm.objective, cold.objective, 1e-9);
        assert_eq!(
            (solver.warm_solves(), solver.cold_solves()),
            (1, 1),
            "the repair must finish on the warm path"
        );
    }

    #[test]
    fn repaired_basis_warm_starts_the_next_resolve() {
        // After a repair the saved basis reflects the repaired optimum;
        // a further small drift should resolve warm again.
        let mut lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        lp.set_rhs(2, 32.0);
        solver.solve(&lp).unwrap();
        lp.set_rhs(2, 31.0);
        let warm = solver.solve(&lp).unwrap();
        assert_close(warm.objective, lp.solve().unwrap().objective, 1e-9);
        assert_eq!(solver.cold_solves(), 1);
        assert_eq!(solver.warm_solves(), 2);
    }

    #[test]
    fn still_optimal_duals_match_a_fresh_solver() {
        // The still-optimal warm path hands its basis factorization to
        // the dual recovery; the duals must be bit-identical to a cold
        // solver's (same basis, same data, same factorization).
        let lp = warmable_lp();
        let mut warm_solver = LpSolver::new();
        warm_solver.solve_with_duals(&lp).unwrap();
        let (_, warm_duals) = warm_solver.solve_with_duals(&lp).unwrap();
        assert_eq!(warm_solver.warm_solves(), 1);
        let (_, cold_duals) = LpSolver::new().solve_with_duals(&lp).unwrap();
        assert_eq!(
            warm_duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            cold_duals.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn reset_forces_cold_solve() {
        let lp = warmable_lp();
        let mut solver = LpSolver::new();
        solver.solve(&lp).unwrap();
        solver.reset();
        solver.solve(&lp).unwrap();
        assert_eq!(solver.cold_solves(), 2);
        assert_eq!(solver.warm_solves(), 0);
    }

    #[test]
    fn warm_resolve_handles_constraint_matrix_drift() {
        // The DC-OPF use case: the constraint *coefficients* drift (the
        // reactances move), not just b and c. Model: min x+y subject to
        // a1·x + y >= 4, x,y in [0,10], sweeping a1.
        let mut solver = LpSolver::new();
        for k in 0..12 {
            let a1 = 1.0 + 0.05 * k as f64;
            let mut lp = LpProblem::new();
            let x = lp.add_var(0.0, 10.0, 1.0);
            let y = lp.add_var(0.0, 10.0, 1.0);
            lp.add_constraint(vec![(x, a1), (y, 1.0)], Relation::Ge, 4.0);
            let warm = solver.solve(&lp).unwrap();
            let cold = lp.solve().unwrap();
            assert_close(warm.objective, cold.objective, 1e-9);
        }
        assert!(solver.warm_solves() >= 10);
    }
}
