//! Scoped-thread fan-out for the workspace's embarrassingly parallel
//! loops (multistart runs, per-attack scoring, threshold sweeps).
//!
//! Built on `std::thread::scope` only — no external runtime — and
//! written so results are **independent of scheduling**: workers pull
//! indices from a shared counter but every result lands back in its
//! item's slot, so [`par_map`] returns exactly what the equivalent
//! serial `map` would, in the same order. Combined with per-item RNG
//! streams (seeded by index, never shared) this gives the workspace its
//! determinism contract: parallel output is bit-identical to serial.
//!
//! The worker count comes from [`available_threads`], which resolves
//! (highest precedence first):
//!
//! 1. the **scoped, per-call budget** ([`with_thread_budget`]) — what
//!    `MtdSession` applies around every entry point, so two sessions
//!    with different `threads(n)` settings can run concurrently in one
//!    process without racing each other;
//! 2. the **process-wide override** ([`set_thread_override`]) — a
//!    last-writer-wins global kept as the coarse fallback for
//!    single-workload hosts (one `gridmtd run` per process);
//! 3. the `GRIDMTD_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].
//!
//! The scoped budget is carried in a thread-local that [`par_map`]
//! re-establishes inside every worker it spawns, so nested fan-outs (a
//! parallel threshold sweep whose inner multistart also fans out)
//! inherit the budget of the call that spawned them. Nested fan-outs
//! briefly oversubscribe the machine but never deadlock, since every
//! layer spawns plain scoped threads.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override (0 = unset). Set through
/// [`set_thread_override`]; read by every fan-out via
/// [`available_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped per-call worker budget (0 = unset). Established by
    /// [`with_thread_budget`] and re-established inside every [`par_map`]
    /// worker, so it follows the call tree across fan-out layers.
    static THREAD_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// Sets (or with `None` clears) the process-wide worker-count override.
///
/// The override beats the `GRIDMTD_THREADS` environment variable and the
/// machine's parallelism, and reaches **every** fan-out layer — outer
/// batch requests, inner multistarts, attack-scoring chunks — because
/// they all size themselves through [`available_threads`]. It is
/// genuinely process-global (last writer wins), which is the right
/// semantics for a single-workload process such as one `gridmtd run`;
/// hosts juggling differently-capped workloads concurrently — the
/// `gridmtd serve` worker pool above all — should use the scoped
/// [`with_thread_budget`] instead, which takes precedence over this
/// override. Results are bit-identical for any worker count (the
/// workspace determinism contract), so both knobs are purely resource
/// controls.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The worker-count override currently in force, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// The scoped per-call worker budget in force on this thread, if any.
pub fn thread_budget() -> Option<usize> {
    match THREAD_BUDGET.with(Cell::get) {
        0 => None,
        n => Some(n),
    }
}

/// Runs `f` under a scoped worker budget: for the duration of the call
/// (including every nested [`par_map`] fan-out it performs, on this
/// thread or on workers those fan-outs spawn), [`available_threads`]
/// returns `budget`. `None` leaves whatever budget is already in force
/// untouched, so wrappers can apply an optional cap unconditionally.
///
/// This is the race-free alternative to [`set_thread_override`]: two
/// threads can run differently-budgeted scopes concurrently and each
/// fan-out sees exactly the budget of the call tree it belongs to.
pub fn with_thread_budget<R>(budget: Option<usize>, f: impl FnOnce() -> R) -> R {
    match budget {
        None => f(),
        Some(n) => {
            let previous = THREAD_BUDGET.with(|b| b.replace(n.max(1)));
            // Restore on every exit path (including unwinds) so a
            // panicking workload cannot leak its budget into unrelated
            // work later scheduled on this thread.
            struct Restore(usize);
            impl Drop for Restore {
                fn drop(&mut self) {
                    THREAD_BUDGET.with(|b| b.set(self.0));
                }
            }
            let _restore = Restore(previous);
            f()
        }
    }
}

/// Worker count used by [`par_map`]: the scoped [`with_thread_budget`]
/// value if one is in force on this thread, else the process-wide
/// [`set_thread_override`] value, else `GRIDMTD_THREADS` (minimum 1),
/// else the machine's available parallelism.
pub fn available_threads() -> usize {
    if let Some(n) = thread_budget() {
        return n;
    }
    if let Some(n) = thread_override() {
        return n;
    }
    if let Ok(v) = std::env::var("GRIDMTD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`available_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(available_threads(), items, f)
}

/// [`par_map`] with a per-item state factory: `init(i, item)` builds the
/// state (typically a warm [`crate::OpfContext`]) and `f` consumes it.
///
/// The state is created fresh for every item — never shared across items
/// or workers — so the output stays bit-identical to serial no matter
/// how items are scheduled, while the many solves *within* one item
/// (a multistart run, a sweep point's OPF sequence) still warm-start
/// from each other through the state. This is the hook the declarative
/// scenario engine uses to give every sweep point its own warm context.
pub fn par_map_with<T, S, R, Init, F>(items: &[T], init: Init, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    Init: Fn(usize, &T) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map(items, |i, item| {
        let mut state = init(i, item);
        f(&mut state, i, item)
    })
}

/// [`par_map`] with an explicit worker count (`threads <= 1` runs
/// inline with no thread machinery — the serial reference path).
///
/// The output is bit-identical for every `threads` value as long as `f`
/// itself is a pure function of `(index, item)`.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    // Workers are fresh OS threads, so the caller's scoped budget must
    // be re-established inside each one for nested fan-outs to inherit
    // it (precedence is documented on `available_threads`).
    let budget = thread_budget();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    with_thread_budget(budget, || {
                        let mut produced: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            produced.push((i, f(i, &items[i])));
                        }
                        produced
                    })
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index processed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<usize> = (0..103).collect();
        let serial = par_map_threads(1, &items, |i, &v| i * 1000 + v * v);
        let parallel = par_map_threads(8, &items, |i, &v| i * 1000 + v * v);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 5 * 1000 + 25);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_threads(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_threads(4, &[7u8], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // Float accumulation per item is self-contained, so any worker
        // count produces the same bits.
        let items: Vec<f64> = (0..64).map(|i| 0.1 * i as f64).collect();
        let reference = par_map_threads(1, &items, |i, &v| (v.sin() * i as f64).exp());
        for threads in [2, 3, 8, 64] {
            let out = par_map_threads(threads, &items, |i, &v| (v.sin() * i as f64).exp());
            assert!(reference
                .iter()
                .zip(out.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn par_map_with_gives_every_item_private_state() {
        // Each item's state starts from its own init value; mutation in
        // one item can never leak into another, so output equals the
        // serial reference for any scheduling.
        let items: Vec<usize> = (0..41).collect();
        let out = par_map_with(
            &items,
            |i, _| i * 10,
            |state, _, &v| {
                *state += v;
                *state
            },
        );
        let reference: Vec<usize> = items.iter().map(|&v| v * 10 + v).collect();
        assert_eq!(out, reference);
    }

    #[test]
    fn scoped_budget_beats_global_and_restores() {
        // The scoped budget wins inside the scope and disappears after
        // it, leaving the (unset) global precedence chain untouched.
        assert_eq!(thread_budget(), None);
        let inside = with_thread_budget(Some(3), || (available_threads(), thread_budget()));
        assert_eq!(inside, (3, Some(3)));
        assert_eq!(thread_budget(), None);
        // `None` inherits the surrounding budget instead of clearing it.
        let nested = with_thread_budget(Some(2), || with_thread_budget(None, available_threads));
        assert_eq!(nested, 2);
    }

    #[test]
    fn scoped_budget_restores_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_budget(Some(5), || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(thread_budget(), None);
    }

    #[test]
    fn scoped_budget_propagates_into_nested_workers() {
        // Every worker of an outer fan-out (and of a fan-out nested
        // inside it) must observe the scope's budget, even though
        // workers are fresh OS threads.
        let items: Vec<usize> = (0..8).collect();
        let observed = with_thread_budget(Some(2), || {
            par_map(&items, |_, _| {
                let inner: Vec<usize> = (0..4).collect();
                let nested = par_map(&inner, |_, _| available_threads());
                (available_threads(), nested)
            })
        });
        for (outer, nested) in observed {
            assert_eq!(outer, 2);
            assert!(nested.iter().all(|&n| n == 2));
        }
    }

    #[test]
    fn concurrent_scopes_keep_independent_budgets() {
        // The historical global override raced: two workloads built
        // with different `threads(n)` caps made the last writer win for
        // both. Scoped budgets are per call tree — each concurrent
        // scope observes exactly its own cap, and the global override
        // is never touched.
        let barrier = std::sync::Barrier::new(2);
        let items: Vec<usize> = (0..16).collect();
        let observe = |budget: usize| {
            barrier.wait();
            with_thread_budget(Some(budget), || par_map(&items, |_, _| available_threads()))
        };
        std::thread::scope(|scope| {
            let a = scope.spawn(|| observe(1));
            let b = scope.spawn(|| observe(4));
            assert!(a.join().unwrap().iter().all(|&n| n == 1));
            assert!(b.join().unwrap().iter().all(|&n| n == 4));
        });
        assert_eq!(
            thread_override(),
            None,
            "scoped budgets must not touch the global"
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |_, &v| {
                assert!(v != 9, "boom");
                v
            })
        });
        assert!(caught.is_err());
    }
}
