//! Scoped-thread fan-out for the workspace's embarrassingly parallel
//! loops (multistart runs, per-attack scoring, threshold sweeps).
//!
//! Built on `std::thread::scope` only — no external runtime — and
//! written so results are **independent of scheduling**: workers pull
//! indices from a shared counter but every result lands back in its
//! item's slot, so [`par_map`] returns exactly what the equivalent
//! serial `map` would, in the same order. Combined with per-item RNG
//! streams (seeded by index, never shared) this gives the workspace its
//! determinism contract: parallel output is bit-identical to serial.
//!
//! The worker count comes from [`available_threads`]: the
//! `GRIDMTD_THREADS` environment variable when set, otherwise
//! [`std::thread::available_parallelism`]. Nested fan-outs (a parallel
//! threshold sweep whose inner multistart also fans out) are allowed;
//! they briefly oversubscribe the machine but never deadlock, since
//! every layer spawns plain scoped threads.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override (0 = unset). Set through
/// [`set_thread_override`]; read by every fan-out via
/// [`available_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide worker-count override.
///
/// The override beats the `GRIDMTD_THREADS` environment variable and the
/// machine's parallelism, and reaches **every** fan-out layer — outer
/// batch requests, inner multistarts, attack-scoring chunks — because
/// they all size themselves through [`available_threads`]. This is the
/// single knob behind `MtdSession::builder().threads(n)` and
/// `gridmtd run --threads`. Results are bit-identical for any worker
/// count (the workspace determinism contract), so the override is purely
/// a resource-usage control.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The worker-count override currently in force, if any.
pub fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Worker count used by [`par_map`]: the [`set_thread_override`] value
/// if set, else `GRIDMTD_THREADS` (minimum 1), else the machine's
/// available parallelism.
pub fn available_threads() -> usize {
    if let Some(n) = thread_override() {
        return n;
    }
    if let Ok(v) = std::env::var("GRIDMTD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`available_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(available_threads(), items, f)
}

/// [`par_map`] with a per-item state factory: `init(i, item)` builds the
/// state (typically a warm [`crate::OpfContext`]) and `f` consumes it.
///
/// The state is created fresh for every item — never shared across items
/// or workers — so the output stays bit-identical to serial no matter
/// how items are scheduled, while the many solves *within* one item
/// (a multistart run, a sweep point's OPF sequence) still warm-start
/// from each other through the state. This is the hook the declarative
/// scenario engine uses to give every sweep point its own warm context.
pub fn par_map_with<T, S, R, Init, F>(items: &[T], init: Init, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    Init: Fn(usize, &T) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map(items, |i, item| {
        let mut state = init(i, item);
        f(&mut state, i, item)
    })
}

/// [`par_map`] with an explicit worker count (`threads <= 1` runs
/// inline with no thread machinery — the serial reference path).
///
/// The output is bit-identical for every `threads` value as long as `f`
/// itself is a pure function of `(index, item)`.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index processed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<usize> = (0..103).collect();
        let serial = par_map_threads(1, &items, |i, &v| i * 1000 + v * v);
        let parallel = par_map_threads(8, &items, |i, &v| i * 1000 + v * v);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 5 * 1000 + 25);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_threads(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_threads(4, &[7u8], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        // Float accumulation per item is self-contained, so any worker
        // count produces the same bits.
        let items: Vec<f64> = (0..64).map(|i| 0.1 * i as f64).collect();
        let reference = par_map_threads(1, &items, |i, &v| (v.sin() * i as f64).exp());
        for threads in [2, 3, 8, 64] {
            let out = par_map_threads(threads, &items, |i, &v| (v.sin() * i as f64).exp());
            assert!(reference
                .iter()
                .zip(out.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn par_map_with_gives_every_item_private_state() {
        // Each item's state starts from its own init value; mutation in
        // one item can never leak into another, so output equals the
        // serial reference for any scheduling.
        let items: Vec<usize> = (0..41).collect();
        let out = par_map_with(
            &items,
            |i, _| i * 10,
            |state, _, &v| {
                *state += v;
                *state
            },
        );
        let reference: Vec<usize> = items.iter().map(|&v| v * 10 + v).collect();
        assert_eq!(out, reference);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |_, &v| {
                assert!(v != 9, "boom");
                v
            })
        });
        assert!(caught.is_err());
    }
}
