//! Gradient-based box-constrained minimization: projected L-BFGS with
//! Armijo backtracking and multistart.
//!
//! The Nelder–Mead machinery in [`crate::nlp`] treats the selection
//! objective as a black box and pays dozens of evaluations per digit of
//! progress. When the caller can supply analytic gradients — as the
//! γ-constrained reactance selection now can, via the measurement-matrix
//! stamps and LP duals — a quasi-Newton method converges in a handful
//! of iterations instead. This module provides the machinery: a two-loop
//! L-BFGS recursion, projection onto box bounds, and the same
//! deterministic multistart contract as `nlp` (per-start RNG streams,
//! bit-identical results for any worker count).
//!
//! The objective callback receives an optional gradient slice: line
//! search trials pass `None` so implementations can skip derivative
//! assembly (dual extraction, stamp accumulation) on points that are
//! about to be discarded.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nlp::MinimizeResult;

/// Options for a single projected L-BFGS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbfgsOptions {
    /// Maximum objective evaluations (line-search trials included).
    pub max_evals: usize,
    /// Number of curvature pairs retained by the two-loop recursion.
    pub memory: usize,
    /// Convergence tolerance on the relative objective decrease.
    pub f_tol: f64,
    /// Convergence tolerance on the projected-gradient ∞-norm.
    pub g_tol: f64,
    /// Armijo sufficient-decrease constant.
    pub c1: f64,
    /// Backtracking step shrink factor in `(0, 1)`.
    pub backtrack: f64,
    /// Maximum backtracking trials per line search.
    pub max_backtracks: usize,
}

impl Default for LbfgsOptions {
    fn default() -> LbfgsOptions {
        LbfgsOptions {
            max_evals: 200,
            memory: 8,
            f_tol: 1e-10,
            g_tol: 1e-8,
            c1: 1e-4,
            backtrack: 0.5,
            max_backtracks: 25,
        }
    }
}

fn project(x: &mut [f64], lower: &[f64], upper: &[f64]) {
    for ((xi, &lo), &hi) in x.iter_mut().zip(lower.iter()).zip(upper.iter()) {
        *xi = xi.clamp(lo, hi);
    }
}

/// Gradient components pointing out of the box at an active bound are
/// dead directions; zeroing them yields the projected gradient whose
/// norm is the first-order stationarity measure for box constraints.
fn projected_gradient(x: &[f64], g: &[f64], lower: &[f64], upper: &[f64]) -> Vec<f64> {
    (0..x.len())
        .map(|i| {
            if (x[i] <= lower[i] && g[i] > 0.0) || (x[i] >= upper[i] && g[i] < 0.0) {
                0.0
            } else {
                g[i]
            }
        })
        .collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// One stored curvature pair `s = xₖ₊₁ − xₖ`, `y = gₖ₊₁ − gₖ`.
struct Pair {
    s: Vec<f64>,
    y: Vec<f64>,
    rho: f64, // 1 / sᵀy
}

/// Two-loop recursion: maps the gradient through the stored curvature
/// pairs to the quasi-Newton direction `Hₖ·g` (the step is `x − α·d`).
fn two_loop(pairs: &[Pair], g: &[f64]) -> Vec<f64> {
    let mut q = g.to_vec();
    let mut alphas = vec![0.0; pairs.len()];
    for (i, p) in pairs.iter().enumerate().rev() {
        let a = p.rho * dot(&p.s, &q);
        alphas[i] = a;
        for (qj, &yj) in q.iter_mut().zip(p.y.iter()) {
            *qj -= a * yj;
        }
    }
    if let Some(last) = pairs.last() {
        let gamma = dot(&last.s, &last.y) / dot(&last.y, &last.y).max(1e-300);
        for qj in q.iter_mut() {
            *qj *= gamma;
        }
    }
    for (i, p) in pairs.iter().enumerate() {
        let beta = p.rho * dot(&p.y, &q);
        for (qj, &sj) in q.iter_mut().zip(p.s.iter()) {
            *qj += (alphas[i] - beta) * sj;
        }
    }
    q
}

/// Minimizes `f` over the box `[lower, upper]` with projected L-BFGS
/// started from `x0` (projected into the box).
///
/// `f(x, grad)` returns the objective at `x`; when `grad` is `Some`, it
/// must also fill the slice with the gradient. Line-search trials pass
/// `None`, so implementations can skip derivative assembly for points
/// that are about to be discarded. Every call counts against
/// `opts.max_evals`, making the budget comparable with the Nelder–Mead
/// `max_evals` it replaces.
///
/// Dimensions where `lower == upper` are held fixed (their projected
/// gradient is identically zero, so no step ever moves them).
/// Non-finite trial values are treated as line-search rejections, so
/// objectives may return `f64::INFINITY` (or a large sentinel) for
/// infeasible points.
///
/// # Panics
///
/// Panics if the slice lengths differ or any bound pair is inverted.
pub fn lbfgs_box<F: FnMut(&[f64], Option<&mut [f64]>) -> f64>(
    mut f: F,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    opts: &LbfgsOptions,
) -> MinimizeResult {
    let n = x0.len();
    assert_eq!(lower.len(), n, "bounds length mismatch");
    assert_eq!(upper.len(), n, "bounds length mismatch");
    for i in 0..n {
        assert!(lower[i] <= upper[i], "inverted bounds at {i}");
    }

    let mut x = x0.to_vec();
    project(&mut x, lower, upper);
    let mut g = vec![0.0; n];
    let mut evals = 1usize;
    let mut fx = f(&x, Some(&mut g));
    if !fx.is_finite() {
        // Nothing to follow downhill from a non-finite start; report it.
        return MinimizeResult { x, f: fx, evals };
    }

    let mut pairs: Vec<Pair> = Vec::new();
    'outer: while evals < opts.max_evals {
        let pg = projected_gradient(&x, &g, lower, upper);
        if norm_inf(&pg) <= opts.g_tol {
            break;
        }

        let mut d = two_loop(&pairs, &g);
        // Fall back to normalized steepest descent whenever the memory
        // is empty (fresh start or just reset after a rejected
        // curvature pair) or the recursion fails to produce a descent
        // direction. Normalizing caps the first trial step at unit
        // length so backtracking starts from a sane scale.
        if pairs.is_empty() || dot(&d, &pg) <= 0.0 {
            let scale = 1.0 / norm2(&pg).max(1.0);
            d = pg.iter().map(|&v| v * scale).collect();
        }

        // Armijo backtracking over the projected arc x(α) = P(x − α·d).
        // The sufficient-decrease reference uses the *actual* step
        // x(α) − x so bound clipping is accounted for.
        let mut alpha = 1.0;
        let mut accepted: Option<(Vec<f64>, f64, Option<Vec<f64>>)> = None;
        for trial in 0..opts.max_backtracks {
            if evals >= opts.max_evals {
                break;
            }
            // Injection point: an exhausted line search keeps the
            // current iterate (the `accepted = None` path below); the
            // optimizer must degrade to a valid, audited result.
            if gridmtd_faults::point!("opf.lbfgs.line_search") {
                break;
            }
            let mut xt: Vec<f64> = x
                .iter()
                .zip(d.iter())
                .map(|(&xi, &di)| xi - alpha * di)
                .collect();
            project(&mut xt, lower, upper);
            let step: Vec<f64> = xt.iter().zip(x.iter()).map(|(&a, &b)| a - b).collect();
            if norm_inf(&step) <= 1e-300 {
                break; // projection pinned the whole step
            }
            // The unit step is accepted most of the time once curvature
            // information is in place, so the first trial optimistically
            // asks for the gradient and saves the follow-up call.
            let want_grad = trial == 0;
            let mut gt = if want_grad { vec![0.0; n] } else { Vec::new() };
            evals += 1;
            let ft = f(&xt, if want_grad { Some(&mut gt) } else { None });
            if ft.is_finite() && ft <= fx + opts.c1 * dot(&g, &step) {
                accepted = Some((xt, ft, want_grad.then_some(gt)));
                break;
            }
            alpha *= opts.backtrack;
        }
        let Some((x_new, f_new, grad_new)) = accepted else {
            break; // line search exhausted: keep the current iterate
        };
        let g_new = match grad_new {
            Some(gt) => gt,
            None => {
                if evals >= opts.max_evals {
                    x = x_new;
                    fx = f_new;
                    break 'outer;
                }
                let mut gt = vec![0.0; n];
                evals += 1;
                let _ = f(&x_new, Some(&mut gt));
                gt
            }
        };

        let s: Vec<f64> = x_new.iter().zip(x.iter()).map(|(&a, &b)| a - b).collect();
        let y: Vec<f64> = g_new.iter().zip(g.iter()).map(|(&a, &b)| a - b).collect();
        let sy = dot(&s, &y);
        // Curvature pairs with tiny or negative sᵀy would make the
        // implicit Hessian indefinite. Dropping only the offending pair
        // is not enough: the remaining stale memory can keep producing
        // the same degenerate short step (and hence the same rejected
        // pair) forever. Reset the whole memory instead, restarting from
        // steepest descent.
        if sy > 1e-12 * norm2(&s) * norm2(&y) {
            if pairs.len() == opts.memory {
                pairs.remove(0);
            }
            pairs.push(Pair {
                rho: 1.0 / sy,
                s,
                y,
            });
        } else {
            pairs.clear();
        }

        let f_drop = fx - f_new;
        x = x_new;
        fx = f_new;
        g = g_new;
        if f_drop.abs() <= opts.f_tol * (1.0 + fx.abs()) {
            break;
        }
    }

    MinimizeResult { x, f: fx, evals }
}

/// Multistart projected L-BFGS over *stateful* objectives with an
/// explicit worker count: `build(s)` constructs the objective for start
/// `s`, which may carry mutable state across its own evaluations (e.g.
/// an OPF context whose LP solver warm-starts along the descent
/// trajectory).
///
/// The start-point contract matches [`crate::nlp::multistart_stateful_threads`]:
/// start 0 is the caller's `x0`, start `s > 0` draws from its own RNG
/// stream seeded `seed ⊕ s`, so the result is a pure function of the
/// inputs — bit-identical for any worker count including serial, with
/// ties between starts keeping the lowest start index. The returned
/// `evals` accumulates over all starts.
///
/// # Panics
///
/// Panics if `n_starts == 0` or the bound slices mismatch.
#[allow(clippy::too_many_arguments)]
pub fn multistart_lbfgs_threads<O, B>(
    build: B,
    x0: &[f64],
    lower: &[f64],
    upper: &[f64],
    n_starts: usize,
    seed: u64,
    opts: &LbfgsOptions,
    threads: usize,
) -> MinimizeResult
where
    B: Fn(usize) -> O + Sync,
    O: FnMut(&[f64], Option<&mut [f64]>) -> f64,
{
    assert!(n_starts > 0, "need at least one start");
    assert_eq!(lower.len(), x0.len(), "bounds length mismatch");
    assert_eq!(upper.len(), x0.len(), "bounds length mismatch");

    let starts: Vec<Vec<f64>> = (0..n_starts)
        .map(|s| {
            if s == 0 {
                x0.to_vec()
            } else {
                // Same per-start stream derivation as `nlp::multistart`:
                // opf sits below core so the seedstream mixer is out of
                // reach, and a collision across starts costs only search
                // diversity, never correctness.
                // gridmtd-lint: allow(raw-seed-mix) -- mirrors the golden-pinned nlp multistart streams; collisions cost diversity, not correctness
                let mut rng = StdRng::seed_from_u64(seed ^ s as u64);
                (0..x0.len())
                    .map(|i| {
                        if upper[i] > lower[i] {
                            rng.gen_range(lower[i]..upper[i])
                        } else {
                            lower[i]
                        }
                    })
                    .collect()
            }
        })
        .collect();

    let results = crate::parallel::par_map_threads(threads, &starts, |s, start| {
        let mut objective = build(s);
        lbfgs_box(|x, grad| objective(x, grad), start, lower, upper, opts)
    });

    let total_evals: usize = results.iter().map(|r| r.evals).sum();
    let mut best: Option<MinimizeResult> = None;
    for r in results {
        // Strict improvement keeps the earliest start on ties, exactly
        // like the serial scan.
        if best.as_ref().is_none_or(|b| r.f < b.f) {
            best = Some(r);
        }
    }
    let mut b = best.expect("at least one start ran");
    b.evals = total_evals;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_with_grad(x: &[f64], grad: Option<&mut [f64]>) -> f64 {
        // f = Σ wᵢ (xᵢ − cᵢ)², c = (1, −2, 0.5), w = (1, 2, 0.5)
        let c = [1.0, -2.0, 0.5];
        let w = [1.0, 2.0, 0.5];
        if let Some(g) = grad {
            for i in 0..3 {
                g[i] = 2.0 * w[i] * (x[i] - c[i]);
            }
        }
        (0..3).map(|i| w[i] * (x[i] - c[i]).powi(2)).sum()
    }

    #[test]
    fn quadratic_bowl_is_minimized() {
        let r = lbfgs_box(
            quad_with_grad,
            &[0.0, 0.0, 0.0],
            &[-5.0; 3],
            &[5.0; 3],
            &LbfgsOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-6, "{:?}", r.x);
        assert!((r.x[1] + 2.0).abs() < 1e-6);
        assert!((r.x[2] - 0.5).abs() < 1e-6);
        assert!(r.f < 1e-10);
        // A quadratic should fall well inside the Nelder–Mead budget.
        assert!(r.evals < 60, "evals = {}", r.evals);
    }

    #[test]
    fn respects_box_bounds_and_finds_active_set() {
        // Unconstrained optimum at (10, 10); box caps at 2 — the
        // constrained optimum pins both coordinates.
        let r = lbfgs_box(
            |x, grad| {
                if let Some(g) = grad {
                    g[0] = 2.0 * (x[0] - 10.0);
                    g[1] = 2.0 * (x[1] - 10.0);
                }
                (x[0] - 10.0).powi(2) + (x[1] - 10.0).powi(2)
            },
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[2.0, 2.0],
            &LbfgsOptions::default(),
        );
        assert!(r.x.iter().all(|&v| v <= 2.0 + 1e-12));
        assert!((r.x[0] - 2.0).abs() < 1e-9 && (r.x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_dimensions_are_pinned() {
        let r = lbfgs_box(
            |x, grad| {
                if let Some(g) = grad {
                    g[0] = 2.0 * x[0];
                    g[1] = 2.0 * (x[1] - 3.0);
                }
                x[0].powi(2) + (x[1] - 3.0).powi(2)
            },
            &[1.0, 0.0],
            &[0.5, -10.0],
            &[0.5, 10.0],
            &LbfgsOptions::default(),
        );
        assert_eq!(r.x[0], 0.5);
        assert!((r.x[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn rosenbrock_2d_converges() {
        let r = lbfgs_box(
            |x, grad| {
                let (a, b) = (1.0 - x[0], x[1] - x[0] * x[0]);
                if let Some(g) = grad {
                    g[0] = -2.0 * a - 400.0 * x[0] * b;
                    g[1] = 200.0 * b;
                }
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            &[-5.0, -5.0],
            &[5.0, 5.0],
            &LbfgsOptions {
                max_evals: 500,
                ..LbfgsOptions::default()
            },
        );
        assert!(r.f < 1e-8, "f = {}", r.f);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn infeasible_regions_are_backed_away_from() {
        // Objective is infinite left of x = 0.5; the minimizer must
        // shrink its steps rather than crash or accept the sentinel.
        let r = lbfgs_box(
            |x, grad| {
                if x[0] < 0.5 {
                    if let Some(g) = grad {
                        g[0] = 0.0;
                    }
                    return f64::INFINITY;
                }
                if let Some(g) = grad {
                    g[0] = 2.0 * (x[0] - 0.25);
                }
                (x[0] - 0.25).powi(2)
            },
            &[2.0],
            &[-5.0],
            &[5.0],
            &LbfgsOptions::default(),
        );
        assert!(r.f.is_finite());
        assert!((r.x[0] - 0.5).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let mut count = 0usize;
        let r = lbfgs_box(
            |x, grad| {
                count += 1;
                if let Some(g) = grad {
                    for (gi, &xi) in g.iter_mut().zip(x.iter()) {
                        *gi = xi.cos() * 1.0 + 2.0 * xi;
                    }
                }
                x.iter().map(|v| v.sin() + v * v).sum()
            },
            &[1.0, -1.0, 2.0],
            &[-4.0; 3],
            &[4.0; 3],
            &LbfgsOptions {
                max_evals: 10,
                ..LbfgsOptions::default()
            },
        );
        assert!(count <= 10, "count = {count}");
        assert_eq!(r.evals, count);
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        // Double well: local min near x = −1 (f = 0.1), global near
        // x = 2 (f = 0); piecewise-smooth min of two parabolas.
        let f = |x: &[f64], grad: Option<&mut [f64]>| {
            let a = (x[0] + 1.0).powi(2) + 0.1;
            let b = 3.0 * (x[0] - 2.0).powi(2);
            if let Some(g) = grad {
                g[0] = if a < b {
                    2.0 * (x[0] + 1.0)
                } else {
                    6.0 * (x[0] - 2.0)
                };
            }
            a.min(b)
        };
        let local = lbfgs_box(f, &[-1.4], &[-3.0], &[3.0], &LbfgsOptions::default());
        assert!((local.x[0] + 1.0).abs() < 0.05);
        let global = multistart_lbfgs_threads(
            |_s| f,
            &[-1.4],
            &[-3.0],
            &[3.0],
            12,
            7,
            &LbfgsOptions::default(),
            2,
        );
        assert!((global.x[0] - 2.0).abs() < 1e-4, "{:?}", global.x);
        assert!(global.f < 1e-8);
    }

    #[test]
    fn multistart_parallel_is_bit_identical_to_serial() {
        let f = |x: &[f64], grad: Option<&mut [f64]>| {
            let v =
                (x[0] - 0.7).powi(2) * (x[1] + 1.1).cos() + (3.0 * x[0]).sin() + 0.05 * x[1] * x[1];
            if let Some(g) = grad {
                g[0] = 2.0 * (x[0] - 0.7) * (x[1] + 1.1).cos() + 3.0 * (3.0 * x[0]).cos();
                g[1] = -(x[0] - 0.7).powi(2) * (x[1] + 1.1).sin() + 0.1 * x[1];
            }
            v
        };
        let serial = multistart_lbfgs_threads(
            |_s| f,
            &[0.0, 0.0],
            &[-4.0, -4.0],
            &[4.0, 4.0],
            9,
            1234,
            &LbfgsOptions::default(),
            1,
        );
        for threads in [2, 4, 16] {
            let parallel = multistart_lbfgs_threads(
                |_s| f,
                &[0.0, 0.0],
                &[-4.0, -4.0],
                &[4.0, 4.0],
                9,
                1234,
                &LbfgsOptions::default(),
                threads,
            );
            assert!(
                serial
                    .x
                    .iter()
                    .zip(parallel.x.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}: {:?} vs {:?}",
                serial.x,
                parallel.x
            );
            assert_eq!(serial.f.to_bits(), parallel.f.to_bits());
            assert_eq!(serial.evals, parallel.evals);
        }
    }

    #[test]
    fn gradient_skipped_on_backtracking_trials() {
        // A stiff quadratic whose minimum sits much closer than the
        // unit-length first direction forces backtracking; every
        // None-gradient call must correspond to a line-search trial.
        let mut none_calls = 0usize;
        let mut some_calls = 0usize;
        let _ = lbfgs_box(
            |x, grad| {
                match grad {
                    Some(g) => {
                        some_calls += 1;
                        g[0] = 200.0 * (x[0] - 0.1);
                    }
                    None => none_calls += 1,
                }
                100.0 * (x[0] - 0.1).powi(2)
            },
            &[0.3],
            &[-2.0],
            &[2.0],
            &LbfgsOptions {
                max_evals: 60,
                ..LbfgsOptions::default()
            },
        );
        assert!(some_calls >= 2, "gradient evals: {some_calls}");
        assert!(none_calls >= 1, "expected f-only backtracking trials");
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_panics() {
        multistart_lbfgs_threads(
            |_s| |x: &[f64], _: Option<&mut [f64]>| x[0],
            &[0.0],
            &[0.0],
            &[1.0],
            0,
            0,
            &LbfgsOptions::default(),
            1,
        );
    }
}
