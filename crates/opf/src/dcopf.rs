//! DC optimal power flow (problem (1) of the paper) on top of the LP
//! solver.
//!
//! For a fixed reactance vector the DC-OPF is a linear program:
//!
//! ```text
//! min Σ Cᵢ(Gᵢ)                        (generation cost)
//! s.t. g − l = B θ                    (nodal balance, B = A D Aᵀ)
//!      −f_max ≤ D Aᵀ θ ≤ f_max        (flow limits)
//!      g_min ≤ g ≤ g_max              (generator limits)
//! ```
//!
//! Linear generator costs go straight into the LP objective; quadratic
//! costs (MATPOWER `case30`) are linearized into convex piecewise-linear
//! segments — convexity guarantees the segments fill in merit order, so
//! the LP relaxation is exact at the knots.
//!
//! Optimization **over reactances** (the `x` degrees of freedom of
//! problem (1), and the SPA-constrained problem (4)) is nonconvex and is
//! handled by [`crate::nlp`] with this LP as the inner solve.

use std::error::Error;
use std::fmt;

use gridmtd_powergrid::{dcpf, GenCost, GridError, Network};

use crate::lp::{LpError, LpProblem, LpSolver, Relation};

/// Options for the DC-OPF construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpfOptions {
    /// Number of piecewise-linear segments used for quadratic cost curves.
    pub pwl_segments: usize,
}

impl Default for OpfOptions {
    fn default() -> OpfOptions {
        OpfOptions { pwl_segments: 10 }
    }
}

/// Errors from the DC-OPF.
#[derive(Debug, Clone, PartialEq)]
pub enum OpfError {
    /// The OPF is infeasible (load cannot be served within limits).
    Infeasible,
    /// The LP was unbounded — indicates corrupted cost data.
    Unbounded,
    /// Network/model construction failure.
    Grid(GridError),
    /// Internal LP failure.
    Lp(LpError),
}

impl fmt::Display for OpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpfError::Infeasible => write!(f, "OPF is infeasible"),
            OpfError::Unbounded => write!(f, "OPF is unbounded"),
            OpfError::Grid(e) => write!(f, "grid error: {e}"),
            OpfError::Lp(e) => write!(f, "LP error: {e}"),
        }
    }
}

impl Error for OpfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OpfError::Grid(e) => Some(e),
            OpfError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for OpfError {
    fn from(e: GridError) -> OpfError {
        OpfError::Grid(e)
    }
}

impl From<LpError> for OpfError {
    fn from(e: LpError) -> OpfError {
        match e {
            LpError::Infeasible => OpfError::Infeasible,
            LpError::Unbounded => OpfError::Unbounded,
            other => OpfError::Lp(other),
        }
    }
}

/// Solution of a DC-OPF.
#[derive(Debug, Clone, PartialEq)]
pub struct OpfSolution {
    /// Generator dispatch, MW (generator order).
    pub dispatch: Vec<f64>,
    /// Bus voltage angles, radians (slack = 0).
    pub theta: Vec<f64>,
    /// Branch flows, MW.
    pub flows: Vec<f64>,
    /// Total generation cost, $/h, evaluated with the **exact** cost model
    /// (quadratic where applicable), not the PWL surrogate.
    pub cost: f64,
}

/// Reusable per-trajectory OPF state: the warm-startable LP engine plus
/// a power-flow context.
///
/// The SPA-constrained selection (problem (4)) evaluates hundreds of
/// DC-OPFs whose reactances drift along one Nelder–Mead trajectory while
/// the LP's *structure* (variables, constraints, bound pattern) stays
/// fixed. Reusing one `OpfContext` across those solves lets each LP
/// warm-start from the previous optimal basis — typically skipping
/// Phase 1 entirely — which is where the `select_mtd` speedup comes
/// from. The embedded [`dcpf::PfContext`] additionally caches the
/// sparse symbolic factorization of `B̃` for the flow-recovery solve at
/// the end of every OPF. A context carries no problem data of its own:
/// feeding it a different network or option set is always *correct*
/// (the solvers fall back to cold starts on any mismatch), just not
/// fast.
#[derive(Debug, Clone, Default)]
pub struct OpfContext {
    lp: LpSolver,
    pf: dcpf::PfContext,
}

impl OpfContext {
    /// Creates a fresh context (first solve is cold).
    pub fn new() -> OpfContext {
        OpfContext::default()
    }

    /// Creates a context around an existing power-flow context (fresh,
    /// cold LP state).
    ///
    /// Passing a *primed* [`dcpf::PfContext`] (see
    /// [`dcpf::PfContext::prime`]) lets many short-lived OPF contexts —
    /// one per multistart run, say — share a single symbolic
    /// factorization of the topology while keeping their simplex warm
    /// chains fully independent, so results stay bit-identical to
    /// all-fresh contexts.
    pub fn with_pf(pf: dcpf::PfContext) -> OpfContext {
        OpfContext {
            pf,
            ..OpfContext::default()
        }
    }

    /// Number of OPF solves that hit the warm-start path.
    pub fn warm_solves(&self) -> u64 {
        self.lp.warm_solves()
    }

    /// Number of OPF solves that ran the cold two-phase path.
    pub fn cold_solves(&self) -> u64 {
        self.lp.cold_solves()
    }
}

/// Solves the DC-OPF for the given reactance vector from a cold start.
///
/// Inside optimization loops prefer [`solve_opf_with`], which reuses the
/// previous solve's simplex basis.
///
/// # Errors
///
/// * [`OpfError::Infeasible`] when the load cannot be served.
/// * Reactance validation errors via [`OpfError::Grid`].
pub fn solve_opf(net: &Network, x: &[f64], options: &OpfOptions) -> Result<OpfSolution, OpfError> {
    solve_opf_with(net, x, options, &mut OpfContext::new())
}

/// Solves the DC-OPF, warm-starting the inner LP from the basis retained
/// in `ctx` (see [`OpfContext`]).
///
/// # Errors
///
/// Same contract as [`solve_opf`]; warm and cold solves agree on the
/// optimal cost.
pub fn solve_opf_with(
    net: &Network,
    x: &[f64],
    options: &OpfOptions,
    ctx: &mut OpfContext,
) -> Result<OpfSolution, OpfError> {
    let model = OpfLp::build(net, x, options)?;
    let sol = ctx.lp.solve(&model.lp)?;
    model.finish(net, x, &sol, ctx)
}

/// The assembled DC-OPF linear program plus the variable/row bookkeeping
/// needed to read a solution (and its duals) back in network terms.
///
/// Constraint rows are laid out as: one PWL coupling `Eq` row per
/// quadratic-cost generator (generator order), then `n_buses` nodal
/// balance `Eq` rows (bus order), then two flow rows per branch
/// (`≤ +fmax` followed by `≥ −fmax`, branch order). Only the balance
/// and flow rows depend on the reactances.
struct OpfLp {
    lp: LpProblem,
    gen_vars: Vec<usize>,
    theta_vars: Vec<usize>,
    cost_offset: f64,
    /// Leading PWL coupling rows (= number of quadratic-cost gens).
    n_pwl_rows: usize,
}

impl OpfLp {
    fn build(net: &Network, x: &[f64], options: &OpfOptions) -> Result<OpfLp, OpfError> {
        net.check_reactances(x)?;
        let n = net.n_buses();
        let slack = net.slack();
        let b_full = net.b_matrix(x)?;
        let suscept = net.susceptances(x)?;

        let mut lp = LpProblem::new();

        // Generator variables (and PWL segments for quadratic costs).
        let mut gen_vars = Vec::with_capacity(net.n_gens());
        let mut cost_offset = 0.0;
        let mut n_pwl_rows = 0usize;
        for g in net.gens() {
            match g.cost {
                GenCost::Linear { c } => {
                    gen_vars.push(lp.add_var(g.pmin_mw, g.pmax_mw, c));
                }
                GenCost::Quadratic { .. } => {
                    let k = options.pwl_segments.max(1);
                    let width = (g.pmax_mw - g.pmin_mw) / k as f64;
                    // g = pmin + Σ s_j, each segment priced at its chord slope.
                    let gv = lp.add_var(g.pmin_mw, g.pmax_mw, 0.0);
                    let mut coeffs = vec![(gv, 1.0)];
                    for j in 0..k {
                        let p_lo = g.pmin_mw + j as f64 * width;
                        let p_hi = p_lo + width;
                        let slope = (g.cost.eval(p_hi) - g.cost.eval(p_lo)) / width;
                        let s = lp.add_var(0.0, width, slope);
                        coeffs.push((s, -1.0));
                    }
                    lp.add_constraint(coeffs, Relation::Eq, g.pmin_mw);
                    n_pwl_rows += 1;
                    cost_offset += g.cost.eval(g.pmin_mw);
                    gen_vars.push(gv);
                }
            }
        }

        // Angle variables for non-slack buses.
        let mut theta_vars = vec![usize::MAX; n];
        for (i, theta_var) in theta_vars.iter_mut().enumerate() {
            if i != slack {
                *theta_var = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, 0.0);
            }
        }

        // Nodal balance at every bus: Σ g@i − Σ_j B[i,j] θ_j = load_i.
        for i in 0..n {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for (gi, g) in net.gens().iter().enumerate() {
                if g.bus == i {
                    coeffs.push((gen_vars[gi], 1.0));
                }
            }
            for j in 0..n {
                if j != slack && b_full[(i, j)] != 0.0 {
                    coeffs.push((theta_vars[j], -b_full[(i, j)]));
                }
            }
            lp.add_constraint(coeffs, Relation::Eq, net.bus(i).load_mw);
        }

        // Flow limits: −fmax ≤ b_l (θ_from − θ_to) ≤ fmax.
        for (l, br) in net.branches().iter().enumerate() {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            if br.from != slack {
                coeffs.push((theta_vars[br.from], suscept[l]));
            }
            if br.to != slack {
                coeffs.push((theta_vars[br.to], -suscept[l]));
            }
            lp.add_constraint(coeffs.clone(), Relation::Le, br.flow_limit_mw);
            lp.add_constraint(coeffs, Relation::Ge, -br.flow_limit_mw);
        }

        Ok(OpfLp {
            lp,
            gen_vars,
            theta_vars,
            cost_offset,
            n_pwl_rows,
        })
    }

    /// Maps an LP solution back to an [`OpfSolution`] (flow recovery via
    /// a DC power flow at the LP dispatch, exact cost model).
    fn finish(
        &self,
        net: &Network,
        x: &[f64],
        sol: &crate::lp::LpSolution,
        ctx: &mut OpfContext,
    ) -> Result<OpfSolution, OpfError> {
        let dispatch: Vec<f64> = self.gen_vars.iter().map(|&v| sol.x[v]).collect();
        // Recover flows/angles from a DC power flow at the LP dispatch:
        // this also serves as an internal consistency check of the LP
        // model. The context's power-flow state reuses the cached
        // symbolic factorization across the trajectory on the sparse
        // path.
        let pf = dcpf::solve_dispatch_with(net, x, &dispatch, &mut ctx.pf)?;

        // Exact cost at the LP dispatch.
        let cost: f64 = net
            .gens()
            .iter()
            .zip(dispatch.iter())
            .map(|(g, &d)| g.cost.eval(d))
            .sum();
        // The PWL chords lie above every convex cost curve, so the LP
        // objective can never undercut the exact cost at the same dispatch.
        debug_assert!(
            sol.objective + self.cost_offset >= cost - 1e-6 * (1.0 + cost.abs()),
            "PWL surrogate undercut the exact convex cost"
        );

        Ok(OpfSolution {
            dispatch,
            theta: pf.theta,
            flows: pf.flows,
            cost,
        })
    }
}

/// Solves the DC-OPF and additionally returns `∂cost/∂x_l` for **every**
/// branch (zero for branches whose reactance doesn't move the optimum),
/// computed from the LP dual multipliers via the envelope theorem.
///
/// Only four constraint rows carry a given reactance `x_l` — the two
/// nodal balance rows of its terminal buses and its own two flow-limit
/// rows — through the susceptance `b_l = base_mva/x_l`, so with
/// `∂b_l/∂x_l = −base_mva/x_l²` and `Δθ = θ_from − θ_to` at the LP
/// optimum:
///
/// ```text
/// ∂cost/∂x_l = ∂b_l/∂x_l · Δθ · (ŷ_bal(from) − ŷ_bal(to) − ŷ_fwd(l) − ŷ_rev(l))
/// ```
///
/// This is the derivative of the LP (PWL-surrogate) objective; for
/// linear generator costs it is exactly the derivative of
/// [`OpfSolution::cost`], for quadratic costs it differs by the chord
/// vs. tangent slope within one PWL segment (small, and immaterial to
/// the optimizer that consumes it). Like the optimal value function of
/// any LP, it is piecewise smooth: at a basis change the returned value
/// is the one-sided derivative priced by the final simplex basis.
///
/// # Errors
///
/// Same contract as [`solve_opf_with`].
pub fn solve_opf_grad_with(
    net: &Network,
    x: &[f64],
    options: &OpfOptions,
    ctx: &mut OpfContext,
) -> Result<(OpfSolution, Vec<f64>), OpfError> {
    let model = OpfLp::build(net, x, options)?;
    let (sol, duals) = ctx.lp.solve_with_duals(&model.lp)?;

    let slack = net.slack();
    let theta_of = |bus: usize| -> f64 {
        if bus == slack {
            0.0
        } else {
            sol.x[model.theta_vars[bus]]
        }
    };
    let bal0 = model.n_pwl_rows;
    let flow0 = bal0 + net.n_buses();
    let mut grad = vec![0.0; net.n_branches()];
    for (l, br) in net.branches().iter().enumerate() {
        let db = -net.base_mva() / (x[l] * x[l]);
        let dtheta = theta_of(br.from) - theta_of(br.to);
        let sensitivity = duals[bal0 + br.from]
            - duals[bal0 + br.to]
            - duals[flow0 + 2 * l]
            - duals[flow0 + 2 * l + 1];
        grad[l] = db * dtheta * sensitivity;
    }

    let opf = model.finish(net, x, &sol, ctx)?;
    Ok((opf, grad))
}

/// Solves the DC-OPF at the network's nominal reactances.
///
/// # Errors
///
/// See [`solve_opf`].
pub fn solve_opf_nominal(net: &Network, options: &OpfOptions) -> Result<OpfSolution, OpfError> {
    solve_opf(net, &net.nominal_reactances(), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    #[test]
    fn case4_reproduces_table2() {
        let net = cases::case4();
        let sol = solve_opf_nominal(&net, &OpfOptions::default()).unwrap();
        // Table II: dispatch (350, 150), cost $1.15e4, flows
        // (126.56, 173.44, −43.44, −26.56).
        assert!((sol.dispatch[0] - 350.0).abs() < 1e-6, "{:?}", sol.dispatch);
        assert!((sol.dispatch[1] - 150.0).abs() < 1e-6);
        assert!((sol.cost - 11_500.0).abs() < 1e-6);
        let expected = [126.56, 173.44, -43.44, -26.56];
        for (l, &e) in expected.iter().enumerate() {
            assert!(
                (sol.flows[l] - e).abs() < 0.01,
                "line {l}: {}",
                sol.flows[l]
            );
        }
    }

    #[test]
    fn case14_merit_order_dispatch() {
        // With 160/60 MW limits the 14-bus system is lightly congested;
        // cheapest units (bus 1 @ 20, bus 2 @ 30) should carry most load.
        let net = cases::case14();
        let sol = solve_opf_nominal(&net, &OpfOptions::default()).unwrap();
        let total: f64 = sol.dispatch.iter().sum();
        assert!((total - 259.0).abs() < 1e-6, "generation balances load");
        assert!(
            sol.dispatch[0] > 150.0,
            "cheapest unit leads: {:?}",
            sol.dispatch
        );
        // All flows within limits.
        for (l, br) in net.branches().iter().enumerate() {
            assert!(
                sol.flows[l].abs() <= br.flow_limit_mw + 1e-6,
                "flow {l} violates limit"
            );
        }
    }

    #[test]
    fn case30_quadratic_costs_solve() {
        let net = cases::case30();
        let sol = solve_opf_nominal(&net, &OpfOptions::default()).unwrap();
        let total: f64 = sol.dispatch.iter().sum();
        assert!((total - 189.2).abs() < 1e-5);
        assert!(sol.cost > 0.0);
        for (l, br) in net.branches().iter().enumerate() {
            assert!(sol.flows[l].abs() <= br.flow_limit_mw + 1e-5);
        }
        for (g, d) in net.gens().iter().zip(sol.dispatch.iter()) {
            assert!(*d >= g.pmin_mw - 1e-9 && *d <= g.pmax_mw + 1e-9);
        }
    }

    #[test]
    fn finer_pwl_grid_reduces_cost_error() {
        let net = cases::case30();
        let coarse = solve_opf(
            &net,
            &net.nominal_reactances(),
            &OpfOptions { pwl_segments: 2 },
        )
        .unwrap();
        let fine = solve_opf(
            &net,
            &net.nominal_reactances(),
            &OpfOptions { pwl_segments: 40 },
        )
        .unwrap();
        // The exact cost of the finer solution cannot be worse (it solves a
        // tighter relaxation of the same convex problem).
        assert!(fine.cost <= coarse.cost + 1e-6);
    }

    #[test]
    fn infeasible_when_capacity_insufficient() {
        let net = cases::case14().scale_loads(3.0); // 777 MW > 450 MW cap
        let err = solve_opf_nominal(&net, &OpfOptions::default()).unwrap_err();
        assert_eq!(err, OpfError::Infeasible);
    }

    #[test]
    fn congestion_raises_cost() {
        // Shrinking line limits forces out-of-merit dispatch; cost rises.
        let net = cases::case14();
        let base = solve_opf_nominal(&net, &OpfOptions::default())
            .unwrap()
            .cost;
        // Tighten only line 1 (the 160 MW corridor out of the cheap unit);
        // this forces out-of-merit redispatch while staying feasible.
        let mut tight_branches = net.branches().to_vec();
        tight_branches[0].flow_limit_mw = 90.0;
        let tight = gridmtd_powergrid::Network::new(
            "tight14",
            net.buses().to_vec(),
            tight_branches,
            net.gens().to_vec(),
            net.slack(),
        )
        .unwrap();
        let constrained = solve_opf_nominal(&tight, &OpfOptions::default())
            .unwrap()
            .cost;
        assert!(
            constrained > base + 1.0,
            "congestion should raise cost: {base} -> {constrained}"
        );
    }

    #[test]
    fn warm_context_matches_cold_solves_along_a_trajectory() {
        // The in-loop usage pattern: one context, reactances drifting
        // gradually the way a Nelder–Mead trajectory moves them.
        for net in [cases::case14(), cases::case30()] {
            let opts = OpfOptions::default();
            let mut x = net.nominal_reactances();
            let mut ctx = OpfContext::new();
            for k in 0..10 {
                for (j, l) in net.dfacts_branches().into_iter().enumerate() {
                    let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                    x[l] *= 1.0 + sign * 0.004 * ((k % 3) as f64 + 1.0);
                }
                let warm = solve_opf_with(&net, &x, &opts, &mut ctx).unwrap();
                let cold = solve_opf(&net, &x, &opts).unwrap();
                assert!(
                    (warm.cost - cold.cost).abs() <= 1e-6 * (1.0 + cold.cost.abs()),
                    "{}: warm {} vs cold {}",
                    net.name(),
                    warm.cost,
                    cold.cost
                );
            }
            assert!(
                ctx.warm_solves() >= 7,
                "{}: warm path should carry the trajectory ({} warm / {} cold)",
                net.name(),
                ctx.warm_solves(),
                ctx.cold_solves()
            );
        }
    }

    #[test]
    fn perturbed_reactances_never_cheaper_than_free_optimum() {
        // For the 4-bus system the nominal point is optimal (gen-1 at
        // Pmax); any reactance perturbation can only increase cost.
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        let base = solve_opf(&net, &x0, &OpfOptions::default()).unwrap().cost;
        for l in 0..4 {
            for scale in [0.8, 1.2] {
                let mut x = x0.clone();
                x[l] *= scale;
                let c = solve_opf(&net, &x, &OpfOptions::default()).unwrap().cost;
                assert!(c >= base - 1e-9, "perturbation ({l},{scale}) got cheaper");
            }
        }
    }
}
