//! Derivative checks: every analytic gradient that feeds the L-BFGS
//! selection path is pinned against a central finite difference on
//! randomized reactance perturbations of case4/case14/case57.
//!
//! Three layers of the chain rule are fenced independently, so a
//! regression points at the broken link rather than at "selection got
//! worse":
//!
//! 1. **`∂H/∂x_l` stamps** (`Network::measurement_matrix_derivative`) —
//!    every entry of the sparse triplet list against the densified
//!    finite difference of `Network::measurement_matrix`;
//! 2. **`∂ sin²γ / ∂x_l`** (`linalg::diff::SinSqState::gradient_entry`
//!    contracted with the stamps) against the finite difference of the
//!    full `x → H(x) → sin²γ(H_pre, H(x))` chain;
//! 3. **`∂cost/∂x_l`** (`solve_opf_grad_with`, LP duals via the envelope
//!    theorem) against the finite difference of the re-solved OPF value,
//!    and on top of both a replica of the selection objective's
//!    exterior-penalty term, differentiated with the same
//!    `dpen/ds · ds/dx` chain the optimizer uses.
//!
//! The perturbations come from the vendored deterministic `proptest`
//! stand-in, so every run exercises the same pinned sample set: a
//! failure here reproduces everywhere.

use gridmtd_linalg::diff::sin_sq_largest_angle;
use gridmtd_linalg::subspace::OrthonormalBasis;
use gridmtd_opf::{solve_opf_grad_with, solve_opf_with, OpfContext, OpfOptions};
use gridmtd_powergrid::{cases, Network};
use proptest::prelude::*;

/// Applies a signed per-D-FACTS-line relative perturbation to the
/// nominal reactances: `x_l ← x_l · (1 + scale · u_l)`, `u ∈ [−1, 1]`.
fn perturbed(net: &Network, units: &[f64], scale: f64) -> Vec<f64> {
    let mut x = net.nominal_reactances();
    for (k, &l) in net.dfacts_branches().iter().enumerate() {
        x[l] *= 1.0 + scale * units[k % units.len()];
    }
    x
}

/// Central finite difference of `f` along branch `l` with relative step
/// `rel` (the step is `rel · x_l`, so conditioning is scale-free).
///
/// `rel = 1e-4` balances the two error sources: truncation is
/// `O(rel²)` relative, while the cancellation noise of the LP value
/// (exact simplex, ~1e-10 absolute on a ~1e4 cost) and of the
/// `sin²γ` power iteration (residual stop at 1e-11) is divided by
/// `2·rel·x_l`. A smaller step drowns near-zero gradients in noise.
fn central_fd(x: &[f64], l: usize, rel: f64, mut f: impl FnMut(&[f64]) -> f64) -> f64 {
    let h = rel * x[l].abs();
    let mut xp = x.to_vec();
    let mut xm = x.to_vec();
    xp[l] += h;
    xm[l] -= h;
    (f(&xp) - f(&xm)) / (2.0 * h)
}

/// Checks every entry of the `∂H/∂x_l` stamps against the densified
/// finite difference of the measurement matrix.
fn check_stamps(net: &Network, units: &[f64]) {
    let x = perturbed(net, units, 0.25);
    let probe = net.measurement_matrix(&x).unwrap();
    let (rows, cols) = (probe.rows(), probe.cols());
    for &l in net.dfacts_branches().iter() {
        let stamps = net.measurement_matrix_derivative(&x, l).unwrap();
        let mut dense = vec![0.0; rows * cols];
        for &(r, c, v) in &stamps {
            dense[r * cols + c] += v;
        }
        let h = 1e-6 * x[l];
        let mut xp = x.clone();
        let mut xm = x.clone();
        xp[l] += h;
        xm[l] -= h;
        let hp = net.measurement_matrix(&xp).unwrap();
        let hm = net.measurement_matrix(&xm).unwrap();
        // The stamp magnitude sets the natural scale of the row.
        let scale = net.base_mva() / (x[l] * x[l]);
        for r in 0..rows {
            for c in 0..cols {
                let fd = (hp[(r, c)] - hm[(r, c)]) / (2.0 * h);
                let got = dense[r * cols + c];
                assert!(
                    (fd - got).abs() <= 1e-6 * scale.max(1.0),
                    "branch {l} entry ({r},{c}): stamp {got} vs FD {fd}"
                );
            }
        }
    }
}

/// Checks `∂ sin²γ / ∂x_l` — the stamp-contracted eigen-gradient —
/// against the finite difference of the full chain.
fn check_gamma_gradient(net: &Network, units: &[f64], stride: usize) {
    let x_pre = net.nominal_reactances();
    let q1 = OrthonormalBasis::new(&net.measurement_matrix(&x_pre).unwrap()).unwrap();
    // Away from x_pre: at x = x_pre the angle is an exact global minimum
    // with zero gradient, which a finite difference confirms trivially.
    let x = perturbed(net, units, 0.3);
    let state = sin_sq_largest_angle(&q1, &net.measurement_matrix(&x).unwrap()).unwrap();
    let analytic: Vec<(usize, f64)> = net
        .dfacts_branches()
        .iter()
        .map(|&l| {
            let stamps = net.measurement_matrix_derivative(&x, l).unwrap();
            (l, state.gradient_entry(&stamps))
        })
        .collect();
    // Error tolerance relative to the gradient vector's scale: a wrong
    // stamp or eigen-weight shows up as an O(scale) discrepancy.
    let scale = analytic.iter().fold(1.0f64, |m, &(_, g)| m.max(g.abs()));
    for &(l, got) in analytic.iter().step_by(stride) {
        let fd = central_fd(&x, l, 1e-4, |xt| {
            sin_sq_largest_angle(&q1, &net.measurement_matrix(xt).unwrap())
                .unwrap()
                .value()
        });
        assert!(
            (fd - got).abs() <= 1e-6 * scale,
            "branch {l}: analytic {got} vs FD {fd} (scale {scale})"
        );
    }
}

/// Checks the envelope-theorem OPF cost gradient against re-solving the
/// LP at displaced reactances.
///
/// The optimal value of an LP is piecewise smooth in `x`; at a basis
/// change the dual gradient is the one-sided derivative. The random
/// perturbation keeps the checks off such kinks for the pinned sample
/// set, and the tolerance (1e-5 of the gradient scale) covers both the
/// quadratic finite-difference truncation and the cancellation noise of
/// the re-solved LP value.
fn check_cost_gradient(net: &Network, units: &[f64], stride: usize) {
    let opts = OpfOptions::default();
    let x = perturbed(net, units, 0.2);
    let mut ctx = OpfContext::new();
    let (_, grad) = solve_opf_grad_with(net, &x, &opts, &mut ctx).unwrap();
    let scale = grad.iter().fold(1.0f64, |m, g| m.max(g.abs()));
    for &l in net.dfacts_branches().iter().step_by(stride) {
        let fd = central_fd(&x, l, 1e-4, |xt| {
            solve_opf_with(net, xt, &opts, &mut ctx).unwrap().cost
        });
        assert!(
            (fd - grad[l]).abs() <= 1e-5 * scale,
            "branch {l}: dual gradient {} vs FD {fd} (scale {scale})",
            grad[l]
        );
    }
}

/// Replicates the selection objective's exterior-penalty term on top of
/// cost and checks its full gradient — the exact `cost' + dpen/ds · ds/dx`
/// chain `run_gradient` hands to L-BFGS.
fn check_penalty_gradient(net: &Network, units: &[f64], stride: usize) {
    let opts = OpfOptions::default();
    let x_pre = net.nominal_reactances();
    let q1 = OrthonormalBasis::new(&net.measurement_matrix(&x_pre).unwrap()).unwrap();
    let x = perturbed(net, units, 0.2);
    let mut ctx = OpfContext::new();

    let s_now = sin_sq_largest_angle(&q1, &net.measurement_matrix(&x).unwrap())
        .unwrap()
        .value();
    // A threshold above the current angle, so the deficit branch of the
    // penalty is active (the overshoot branch is the same algebra with
    // the opposite sign).
    let s_th = (s_now + 0.05).min(0.95);
    let weight = 5.0e4;

    let objective = |xt: &[f64], ctx: &mut OpfContext| -> f64 {
        let cost = solve_opf_with(net, xt, &opts, ctx).unwrap().cost;
        let s = sin_sq_largest_angle(&q1, &net.measurement_matrix(xt).unwrap())
            .unwrap()
            .value();
        let deficit = (s_th - s).max(0.0);
        cost + weight * deficit * deficit
    };

    let (_, cost_grad) = solve_opf_grad_with(net, &x, &opts, &mut ctx).unwrap();
    let state = sin_sq_largest_angle(&q1, &net.measurement_matrix(&x).unwrap()).unwrap();
    let deficit = (s_th - state.value()).max(0.0);
    let dpen_ds = -2.0 * weight * deficit;
    let analytic: Vec<(usize, f64)> = net
        .dfacts_branches()
        .iter()
        .map(|&l| {
            let stamps = net.measurement_matrix_derivative(&x, l).unwrap();
            (l, cost_grad[l] + dpen_ds * state.gradient_entry(&stamps))
        })
        .collect();
    let scale = analytic.iter().fold(1.0f64, |m, &(_, g)| m.max(g.abs()));
    for &(l, got) in analytic.iter().step_by(stride) {
        let fd = central_fd(&x, l, 1e-4, |xt| objective(xt, &mut ctx));
        assert!(
            (fd - got).abs() <= 1e-5 * scale,
            "branch {l}: penalty-chain gradient {got} vs FD {fd} (scale {scale})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn case4_stamps_match_fd(units in proptest::collection::vec(-1.0..1.0f64, 4)) {
        check_stamps(&cases::case4(), &units);
    }

    #[test]
    fn case14_stamps_match_fd(units in proptest::collection::vec(-1.0..1.0f64, 6)) {
        check_stamps(&cases::case14(), &units);
    }

    #[test]
    fn case57_stamps_match_fd(units in proptest::collection::vec(-1.0..1.0f64, 12)) {
        check_stamps(&cases::case57(), &units);
    }

    #[test]
    fn case4_gamma_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 4)) {
        check_gamma_gradient(&cases::case4(), &units, 1);
    }

    #[test]
    fn case14_gamma_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 6)) {
        check_gamma_gradient(&cases::case14(), &units, 1);
    }

    #[test]
    fn case57_gamma_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 12)) {
        // Every 3rd D-FACTS branch: the eigen-gradient contraction is
        // uniform over branches, and each finite difference re-runs a
        // dense 56x56 eigensolve.
        check_gamma_gradient(&cases::case57(), &units, 3);
    }

    #[test]
    fn case4_cost_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 4)) {
        check_cost_gradient(&cases::case4(), &units, 1);
    }

    #[test]
    fn case14_cost_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 6)) {
        check_cost_gradient(&cases::case14(), &units, 1);
    }
}

proptest! {
    // The 57-bus OPF re-solves are the expensive part; a smaller pinned
    // sample set still walks several distinct active sets.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn case57_cost_gradient_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 12)) {
        // Every 4th D-FACTS branch: the dual-pricing formula is uniform
        // over branches, so a pinned subset keeps the check while
        // bounding the 57-bus LP re-solve count.
        check_cost_gradient(&cases::case57(), &units, 4);
    }

    #[test]
    fn case14_penalty_chain_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 6)) {
        check_penalty_gradient(&cases::case14(), &units, 1);
    }

    #[test]
    fn case57_penalty_chain_matches_fd(units in proptest::collection::vec(-1.0..1.0f64, 12)) {
        check_penalty_gradient(&cases::case57(), &units, 4);
    }
}
