//! Property-based tests for the warm-started LP engine and the DC-OPF
//! on the synthetic scale cases.
//!
//! Two contracts are fenced here:
//!
//! 1. **Warm == cold.** A warm-started resolve after random
//!    objective/RHS/bound perturbations must land on the same optimal
//!    objective as a from-scratch solve (within 1e-9), or agree on the
//!    failure mode.
//! 2. **Physics invariants at scale.** DC power flow and DC-OPF on
//!    `case57`/`case118` satisfy flow balance at every bus, and the OPF
//!    respects generator and line limits.

use gridmtd_opf::lp::{LpProblem, LpSolver, Relation};
use gridmtd_opf::{solve_opf, OpfOptions};
use gridmtd_powergrid::{cases, dcpf, Network};
use proptest::prelude::*;

/// A feasible, bounded random LP: box-bounded variables plus a few `≤`
/// constraints with nonnegative RHS (x = lower bound shifted to zero is
/// always feasible; the box keeps it bounded).
fn random_lp(
    n_vars: usize,
    n_cons: usize,
) -> impl Strategy<Value = (LpProblem, Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-4.0..4.0f64, n_vars), // costs
        proptest::collection::vec(0.5..6.0f64, n_vars),  // widths
        proptest::collection::vec(-2.0..2.0f64, n_vars * n_cons), // coeffs
        proptest::collection::vec(1.0..8.0f64, n_cons),  // rhs
    )
        .prop_map(move |(costs, widths, coeffs, rhs)| {
            let mut lp = LpProblem::new();
            for v in 0..n_vars {
                lp.add_var(0.0, widths[v], costs[v]);
            }
            for c in 0..n_cons {
                let row: Vec<(usize, f64)> =
                    (0..n_vars).map(|v| (v, coeffs[c * n_vars + v])).collect();
                lp.add_constraint(row, Relation::Le, rhs[c]);
            }
            (lp, costs, rhs)
        })
}

/// Flow balance: at every bus, injection − load must equal the net flow
/// leaving the bus.
fn assert_flow_balance(net: &Network, pf: &dcpf::PowerFlow, tol: f64) {
    for i in 0..net.n_buses() {
        let mut outflow = 0.0;
        for (l, br) in net.branches().iter().enumerate() {
            if br.from == i {
                outflow += pf.flows[l];
            }
            if br.to == i {
                outflow -= pf.flows[l];
            }
        }
        assert!(
            (pf.injections[i] - outflow).abs() < tol,
            "bus {i}: injection {} vs outflow {outflow}",
            pf.injections[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_resolve_matches_cold_on_perturbed_lps(
        (lp, costs, rhs) in random_lp(5, 4),
        dcost in proptest::collection::vec(-0.3..0.3f64, 5),
        drhs in proptest::collection::vec(-0.5..0.5f64, 4),
        dupper in 0.0..0.5f64,
    ) {
        let mut solver = LpSolver::new();
        let first = solver.solve(&lp);
        prop_assert!(first.is_ok(), "the base LP is feasible and bounded by construction");

        // Random objective + RHS + bound perturbation, then warm resolve.
        let mut perturbed = lp.clone();
        for (v, d) in dcost.iter().enumerate() {
            perturbed.set_cost(v, costs[v] + d);
        }
        for (c, d) in drhs.iter().enumerate() {
            perturbed.set_rhs(c, (rhs[c] + d).max(0.1));
        }
        perturbed.set_bounds(0, 0.0, 1.0 + dupper);

        let warm = solver.solve(&perturbed);
        let cold = perturbed.solve();
        match (warm, cold) {
            (Ok(w), Ok(c)) => prop_assert!(
                (w.objective - c.objective).abs() <= 1e-9 * (1.0 + c.objective.abs()),
                "warm {} vs cold {}",
                w.objective,
                c.objective
            ),
            (w, c) => prop_assert_eq!(w, c, "warm and cold must agree on failure mode"),
        }
    }

    #[test]
    fn warm_chain_stays_consistent_over_many_resolves(
        (lp, _costs, rhs) in random_lp(4, 3),
        steps in proptest::collection::vec((0..3usize, -0.4..0.4f64), 6),
    ) {
        // One solver fed a drifting sequence must match cold at every step.
        let mut solver = LpSolver::new();
        let mut current = lp.clone();
        if current.solve().is_err() {
            return Ok(()); // base must be solvable to seed the chain
        }
        solver.solve(&current).unwrap();
        for (c, d) in steps {
            current.set_rhs(c, (rhs[c] + d).max(0.1));
            let warm = solver.solve(&current);
            let cold = current.solve();
            match (warm, cold) {
                (Ok(w), Ok(cc)) => prop_assert!(
                    (w.objective - cc.objective).abs() <= 1e-9 * (1.0 + cc.objective.abs())
                ),
                (w, cc) => prop_assert_eq!(w, cc),
            }
        }
    }

    #[test]
    fn cold_fallback_after_basis_invalidation_is_bit_identical_to_cold(
        (lp, _costs, _rhs) in random_lp(5, 3),
        newrow in proptest::collection::vec(-2.0..2.0f64, 5),
        newrhs in 1.0..8.0f64,
    ) {
        // A grown constraint set invalidates the saved basis by shape,
        // forcing the warm engine down its fallback chain. The contract
        // is stronger than "same objective": the fallback *is* the cold
        // two-phase solve, so the answer must not move by a single bit
        // relative to a fresh solver that never had a basis.
        let mut solver = LpSolver::new();
        prop_assert!(solver.solve(&lp).is_ok());
        let mut grown = lp.clone();
        let row: Vec<(usize, f64)> = newrow.iter().enumerate().map(|(v, &a)| (v, a)).collect();
        grown.add_constraint(row, Relation::Le, newrhs);

        let via_fallback = solver.solve(&grown);
        prop_assert_eq!(solver.cold_solves(), 2, "shape change must invalidate the basis");
        let pure_cold = grown.solve();
        match (via_fallback, pure_cold) {
            (Ok(w), Ok(c)) => {
                prop_assert_eq!(w.objective.to_bits(), c.objective.to_bits());
                prop_assert_eq!(w.x.len(), c.x.len());
                for (a, b) in w.x.iter().zip(c.x.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            (w, c) => prop_assert_eq!(w, c, "fallback and cold must agree on failure mode"),
        }
    }

    #[test]
    fn dc_power_flow_balances_on_scale_cases(
        shares in proptest::collection::vec(0.2..1.0f64, 16),
        which in 0..2usize,
    ) {
        let net = if which == 0 { cases::case57() } else { cases::case118() };
        // Random (not merit-order) dispatch proportional to random
        // shares, scaled to cover the load; the slack bus absorbs the
        // residual imbalance.
        let total: f64 = shares.iter().take(net.n_gens()).sum();
        let dispatch: Vec<f64> = shares
            .iter()
            .take(net.n_gens())
            .map(|s| s / total * net.total_load())
            .collect();
        let x = net.nominal_reactances();
        let pf = dcpf::solve_dispatch(&net, &x, &dispatch).unwrap();
        assert_flow_balance(&net, &pf, 1e-6);
        // Injections must realize the requested dispatch minus load.
        let realized: f64 = pf.injections.iter().sum();
        prop_assert!(realized.abs() < 1e-6, "loads fully served: {realized}");
    }
}

/// Deterministic (non-proptest) invariant check for the OPF on both
/// scale cases: one release-mode solve each is enough, and keeps the
/// expensive `case118` LP out of the 48-case proptest loop.
#[test]
fn dc_opf_respects_limits_on_scale_cases() {
    for net in [cases::case57(), cases::case118()] {
        let x = net.nominal_reactances();
        let sol = solve_opf(&net, &x, &OpfOptions::default()).unwrap();
        let total: f64 = sol.dispatch.iter().sum();
        assert!(
            (total - net.total_load()).abs() < 1e-5,
            "{}: generation {total} must balance load {}",
            net.name(),
            net.total_load()
        );
        for (g, d) in net.gens().iter().zip(sol.dispatch.iter()) {
            assert!(*d >= g.pmin_mw - 1e-7 && *d <= g.pmax_mw + 1e-7);
        }
        for (l, br) in net.branches().iter().enumerate() {
            assert!(
                sol.flows[l].abs() <= br.flow_limit_mw + 1e-5,
                "{}: line {l} over limit",
                net.name()
            );
        }
        let pf = dcpf::solve_dispatch(&net, &x, &sol.dispatch).unwrap();
        assert_flow_balance(&net, &pf, 1e-6);
    }
}
