//! Load traces for time-varying simulations.
//!
//! The paper drives its dynamic-load experiments (Figs. 9–11) with the
//! NYISO hourly load trace of 25-Jan-2016. That dataset is not
//! redistributable here, so [`nyiso_winter_weekday`] provides a
//! deterministic synthetic winter-weekday profile with the same
//! qualitative structure the experiments depend on (see `DESIGN.md`):
//! an overnight trough, a morning ramp, a midday plateau and an evening
//! peak at 6–7 PM, with strong hour-to-hour correlation. The trace is
//! expressed as *scaling factors* that multiply a case's nominal loads.

mod trace;

pub use trace::{nyiso_winter_weekday, LoadTrace};
