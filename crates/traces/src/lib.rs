//! Load traces for time-varying simulations.
//!
//! The paper drives its dynamic-load experiments (Figs. 9–11) with the
//! NYISO hourly load trace of 25-Jan-2016. That dataset is not
//! redistributable here, so [`nyiso_winter_weekday`] provides a
//! deterministic synthetic winter-weekday profile with the same
//! qualitative structure the experiments depend on (see `DESIGN.md`):
//! an overnight trough, a morning ramp, a midday plateau and an evening
//! peak at 6–7 PM, with strong hour-to-hour correlation. The trace is
//! expressed as *scaling factors* that multiply a case's nominal loads.
//!
//! Declarative scenario specs reference traces by name; [`by_name`]
//! resolves the [`BUILTIN_TRACES`] registry, and [`flat`] builds the
//! constant-load degenerate trace.

mod trace;

pub use trace::{by_name, flat, nyiso_winter_weekday, LoadTrace, BUILTIN_TRACES};
