use serde::{Deserialize, Serialize};

/// A 24-hour load trace, stored as total-system-load values in MW.
///
/// Traces are applied to a network by uniform scaling of its nominal bus
/// loads — the same methodology as feeding an aggregate NYISO trace into
/// an IEEE test case.
///
/// # Example
///
/// ```
/// use gridmtd_traces::nyiso_winter_weekday;
///
/// let trace = nyiso_winter_weekday();
/// assert_eq!(trace.len(), 24);
/// // Evening peak is the daily maximum.
/// assert_eq!(trace.peak_hour(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    hourly_mw: Vec<f64>,
}

impl LoadTrace {
    /// Creates a trace from hourly totals.
    ///
    /// # Panics
    ///
    /// Panics if `hourly_mw` is empty or contains non-positive values.
    pub fn new(hourly_mw: Vec<f64>) -> LoadTrace {
        assert!(!hourly_mw.is_empty(), "trace must be non-empty");
        assert!(
            hourly_mw.iter().all(|&v| v > 0.0 && v.is_finite()),
            "loads must be positive and finite"
        );
        LoadTrace { hourly_mw }
    }

    /// Number of hours in the trace.
    pub fn len(&self) -> usize {
        self.hourly_mw.len()
    }

    /// Whether the trace is empty (never true for validated traces).
    pub fn is_empty(&self) -> bool {
        self.hourly_mw.is_empty()
    }

    /// Total system load at `hour` (wrapping beyond the trace length, so
    /// multi-day simulations can reuse a daily profile).
    pub fn total_load_mw(&self, hour: usize) -> f64 {
        self.hourly_mw[hour % self.hourly_mw.len()]
    }

    /// All hourly totals.
    pub fn hourly(&self) -> &[f64] {
        &self.hourly_mw
    }

    /// Scaling factor mapping a case with nominal total load
    /// `nominal_total_mw` to this trace at `hour`.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_total_mw <= 0`.
    pub fn scaling_factor(&self, hour: usize, nominal_total_mw: f64) -> f64 {
        assert!(nominal_total_mw > 0.0, "nominal load must be positive");
        self.total_load_mw(hour) / nominal_total_mw
    }

    /// Hour of the daily peak (first occurrence).
    pub fn peak_hour(&self) -> usize {
        let mut best = 0;
        for (h, &v) in self.hourly_mw.iter().enumerate() {
            if v > self.hourly_mw[best] {
                best = h;
            }
        }
        best
    }

    /// Returns a copy rescaled so the peak equals `peak_mw`.
    ///
    /// # Panics
    ///
    /// Panics if `peak_mw <= 0`.
    pub fn rescaled_to_peak(&self, peak_mw: f64) -> LoadTrace {
        assert!(peak_mw > 0.0, "peak must be positive");
        let current = self.hourly_mw[self.peak_hour()];
        LoadTrace {
            hourly_mw: self
                .hourly_mw
                .iter()
                .map(|v| v * peak_mw / current)
                .collect(),
        }
    }
}

/// Synthetic NYISO-style winter weekday profile (total MW per hour,
/// 0 = midnight–1 AM … 23 = 11 PM–midnight), scaled to the IEEE 14-bus
/// system so that peak hours push past the D-FACTS-compensated
/// congestion onset (~225 MW): trough ≈ 167 MW overnight, evening peak
/// ≈ 253 MW (98% of the case's 259 MW nominal) at 6–7 PM. The paper's
/// Fig. 10 axis shows 140–220 MW, but with the Table IV generators and
/// 160/60 MW line limits those loads never congest once reactances are
/// free within the D-FACTS box, so its nonzero MTD costs are only
/// reachable at a slightly higher operating point (see EXPERIMENTS.md).
///
/// This is a **substitution** for the non-redistributable NYISO trace of
/// 25-Jan-2016 (see `DESIGN.md`): any smooth profile with a realistic
/// trough/peak structure and strong hour-to-hour correlation exercises
/// the same code paths (hourly OPF, measurement-matrix drift
/// `γ(H_t, H_t') ≈ 0`, congestion-driven MTD cost at peak hours).
pub fn nyiso_winter_weekday() -> LoadTrace {
    LoadTrace::new(vec![
        175.0, 170.0, 168.0, 167.0, 168.0, 173.0, // 0-5 AM: overnight trough
        186.0, 205.0, 219.0, 225.0, 228.0, 227.0, // 6-11 AM: morning ramp
        224.0, 221.0, 219.0, 221.0, 230.0, 244.0, // 12-5 PM: afternoon rise
        253.0, 251.0, 239.0, 222.0, 201.0, 184.0, // 6-11 PM: evening peak, decline
    ])
}

/// Flat trace: `hours` identical entries of `total_mw`. Useful for
/// static-load timeline runs and as a degenerate test trace.
///
/// # Panics
///
/// Panics if `hours == 0` or `total_mw <= 0`.
pub fn flat(hours: usize, total_mw: f64) -> LoadTrace {
    assert!(hours > 0, "trace must be non-empty");
    LoadTrace::new(vec![total_mw; hours])
}

/// Names of the built-in traces resolvable by [`by_name`], in
/// registry order.
pub const BUILTIN_TRACES: &[&str] = &["nyiso_winter_weekday"];

/// Looks up a built-in trace by name (the declarative scenario specs
/// reference traces this way). Returns `None` for unknown names; see
/// [`BUILTIN_TRACES`] for the valid set.
pub fn by_name(name: &str) -> Option<LoadTrace> {
    match name {
        "nyiso_winter_weekday" => Some(nyiso_winter_weekday()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winter_weekday_shape() {
        let t = nyiso_winter_weekday();
        assert_eq!(t.len(), 24);
        // trough in the small hours
        let trough =
            (0..24).min_by(|&a, &b| t.total_load_mw(a).partial_cmp(&t.total_load_mw(b)).unwrap());
        assert_eq!(trough, Some(3));
        // peak at 6 PM
        assert_eq!(t.peak_hour(), 18);
        // smooth: adjacent hours change < 12%
        for h in 0..24 {
            let a = t.total_load_mw(h);
            let b = t.total_load_mw(h + 1);
            assert!((a - b).abs() / a < 0.12, "jump at hour {h}");
        }
    }

    #[test]
    fn wrapping_indexing() {
        let t = nyiso_winter_weekday();
        assert_eq!(t.total_load_mw(0), t.total_load_mw(24));
        assert_eq!(t.total_load_mw(5), t.total_load_mw(29));
    }

    #[test]
    fn scaling_factor_maps_nominal_load() {
        let t = nyiso_winter_weekday();
        // IEEE 14-bus nominal total is 259 MW.
        let f = t.scaling_factor(18, 259.0);
        assert!((f - 253.0 / 259.0).abs() < 1e-12);
    }

    #[test]
    fn rescaled_to_peak() {
        let t = nyiso_winter_weekday().rescaled_to_peak(259.0);
        assert!((t.total_load_mw(18) - 259.0).abs() < 1e-9);
        assert_eq!(t.peak_hour(), 18);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trace_panics() {
        LoadTrace::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_load_panics() {
        LoadTrace::new(vec![100.0, -5.0]);
    }

    #[test]
    fn flat_trace_is_constant() {
        let t = flat(4, 250.0);
        assert_eq!(t.len(), 4);
        for h in 0..4 {
            assert_eq!(t.total_load_mw(h), 250.0);
        }
    }

    #[test]
    fn registry_resolves_every_builtin_name() {
        for &name in BUILTIN_TRACES {
            assert!(by_name(name).is_some(), "unresolvable builtin {name}");
        }
        assert!(by_name("no_such_trace").is_none());
        assert_eq!(
            by_name("nyiso_winter_weekday"),
            Some(nyiso_winter_weekday())
        );
    }
}
