//! Audit a random-perturbation MTD "keyspace" (the strategy of prior
//! work) against the SPA-targeted design of the paper.
//!
//! Prints, for each strategy, the achieved subspace angle and the
//! fraction of stale stealthy attacks that become detectable — making
//! the paper's headline comparison (Figs. 7–8 vs Fig. 6) tangible on one
//! screen.
//!
//! Run with: `cargo run --release --example keyspace_audit`

use gridmtd::mtd::{effectiveness, selection, MtdConfig};
use gridmtd::powergrid::cases;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = cases::case14();
    let cfg = MtdConfig {
        n_attacks: 400,
        n_starts: 3,
        max_evals_per_start: 200,
        ..MtdConfig::default()
    };
    let x_pre = net.nominal_reactances();
    let opf = gridmtd::opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf.dispatch, &cfg)?;
    let mut rng = StdRng::seed_from_u64(2024);

    println!("strategy                     gamma   eta(0.5)  eta(0.9)");
    for trial in 0..5 {
        let x = selection::random_perturbation(&net, &x_pre, 0.5, &mut rng);
        let eval = effectiveness::evaluate_with_attacks(&net, &x_pre, &x, &attacks, &cfg)?;
        println!(
            "random +/-50%  (trial {})    {:5.3}   {:8.3}  {:8.3}",
            trial + 1,
            eval.gamma,
            eval.effectiveness(0.5),
            eval.effectiveness(0.9)
        );
    }

    for gamma_th in [0.1, 0.2] {
        let sel = selection::select_mtd(&net, &x_pre, gamma_th, &cfg)?;
        let eval = effectiveness::evaluate_with_attacks(&net, &x_pre, &sel.x_post, &attacks, &cfg)?;
        println!(
            "SPA-targeted (gamma>={gamma_th})      {:5.3}   {:8.3}  {:8.3}",
            eval.gamma,
            eval.effectiveness(0.5),
            eval.effectiveness(0.9)
        );
    }
    println!();
    println!("the targeted design guarantees its angle (and thus a floor on");
    println!("effectiveness); the random keyspace scatters unpredictably.");
    Ok(())
}
