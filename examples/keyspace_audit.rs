//! Audit a random-perturbation MTD "keyspace" (the strategy of prior
//! work) against the SPA-targeted design of the paper.
//!
//! One session, one cached attack ensemble, two strategies: random
//! trials through [`MtdSession::keyspace_study`] and targeted
//! selections through [`MtdSession::select`], all scored against the
//! same stale attacks — making the paper's headline comparison
//! (Figs. 7–8 vs Fig. 6) tangible on one screen.
//!
//! Run with: `cargo run --release --example keyspace_audit`

use gridmtd::mtd::{MtdConfig, MtdSession};
use gridmtd::powergrid::cases;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = MtdSession::builder(cases::case14())
        .config(MtdConfig {
            n_attacks: 400,
            n_starts: 3,
            max_evals_per_start: 200,
            ..MtdConfig::default()
        })
        .build()?;

    println!("strategy                     gamma   eta(0.5)  eta(0.9)");
    // Prior work's keyspace: random perturbations, here at the full
    // ±50% D-FACTS range — and still no effectiveness guarantee.
    for trial in session.keyspace_study(0.5, 5, &[0.5, 0.9])? {
        println!(
            "random +/-50%  (trial {})    {:5.3}   {:8.3}  {:8.3}",
            trial.trial + 1,
            trial.gamma,
            trial.eta(0.5).unwrap_or(0.0),
            trial.eta(0.9).unwrap_or(0.0)
        );
    }

    for gamma_th in [0.1, 0.2] {
        let sel = session.select(gamma_th)?;
        let eval = session.evaluate(&sel.x_post)?;
        println!(
            "SPA-targeted (gamma>={gamma_th})      {:5.3}   {:8.3}  {:8.3}",
            eval.gamma,
            eval.effectiveness(0.5),
            eval.effectiveness(0.9)
        );
    }
    println!();
    println!("the targeted design guarantees its angle (and thus a floor on");
    println!("effectiveness); the random keyspace scatters unpredictably.");
    Ok(())
}
