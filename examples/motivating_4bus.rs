//! The paper's motivating example (Section IV-B): on the 4-bus system,
//! randomly-chosen single-line MTD perturbations leave entire families of
//! attacks stealthy, and each perturbation carries a different
//! operational cost — the cost/benefit tension the paper formalizes.
//!
//! Reproduces Tables I–III interactively through a session (whose warm
//! OPF state serves every per-line solve).
//!
//! Run with: `cargo run --release --example motivating_4bus`

use gridmtd::mtd::{theory, MtdSession};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = MtdSession::builder(gridmtd::powergrid::cases::case4()).build()?;
    let net = session.network();
    let x0 = session.x_pre().to_vec();

    // Pre-perturbation operating point (Table II).
    let pre = session.opf_pre()?;
    println!("pre-perturbation OPF (Table II):");
    println!(
        "  flows: {:.2} / {:.2} / {:.2} / {:.2} MW",
        pre.flows[0], pre.flows[1], pre.flows[2], pre.flows[3]
    );
    println!(
        "  dispatch: ({:.0}, {:.0}) MW, cost ${:.0}/h",
        pre.dispatch[0], pre.dispatch[1], pre.cost
    );
    println!();

    // Two stealthy attacks (Table I): state offsets with bus 1 as slack.
    let h = session.h_pre()?;
    let attack1 = h.matvec(&[1.0, 1.0, 1.0])?; // c = [0,1,1,1]
    let attack2 = h.matvec(&[0.0, 0.0, 1.0])?; // c = [0,0,0,1]

    println!("single-line MTDs at eta = 0.2 (Tables I and III):");
    println!("  MTD    detects A1?  detects A2?  OPF cost     increase");
    for l in 0..4 {
        let mut x = x0.clone();
        x[l] *= 1.2;
        let h_post = net.measurement_matrix(&x)?;
        let d1 = !theory::is_undetectable(&h_post, &attack1)?;
        let d2 = !theory::is_undetectable(&h_post, &attack2)?;
        let post = session.solve_opf(&x)?;
        println!(
            "  dx{}    {:<12} {:<12} ${:<10.0} +{:.2}%",
            l + 1,
            if d1 { "yes" } else { "NO" },
            if d2 { "yes" } else { "NO" },
            post.cost,
            100.0 * (post.cost - pre.cost) / pre.cost
        );
    }
    println!();
    println!("every single-line MTD misses one of the two attacks, and the");
    println!("cheapest effective perturbation differs per attack — hence the");
    println!("paper's joint effectiveness/cost design problem.");
    Ok(())
}
