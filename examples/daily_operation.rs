//! A day in the life of an MTD-defended grid operator (Figs. 10–11).
//!
//! Each hour: re-dispatch for the trace load, assume the attacker's
//! knowledge is one hour stale, tune the smallest subspace-angle
//! threshold achieving `η'(0.9) ≥ 0.9`, and log the operational cost of
//! the defense. Uses reduced optimizer budgets so it finishes in about a
//! minute; the `fig10_11` bench binary runs the full-budget version.
//!
//! Run with: `cargo run --release --example daily_operation`

use gridmtd::mtd::{timeline, MtdConfig, TimelineOptions};
use gridmtd::powergrid::cases;
use gridmtd::traces::nyiso_winter_weekday;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = cases::case14();
    let trace = nyiso_winter_weekday();
    let cfg = MtdConfig {
        n_attacks: 300,
        n_starts: 2,
        max_evals_per_start: 150,
        ..MtdConfig::default()
    };
    let opts = TimelineOptions::default();

    println!("hour   load(MW)  cost_no_mtd  cost_mtd   +%     gamma  eta(0.9)");
    let outcomes = timeline::simulate_day(&net, &trace, &opts, &cfg)?;
    for o in &outcomes {
        println!(
            "{:02}:00  {:7.0}  {:10.0}  {:9.0}  {:5.2}  {:6.3}  {:7.3}{}",
            o.hour,
            o.total_load_mw,
            o.cost_no_mtd,
            o.cost_with_mtd,
            o.cost_increase_percent,
            o.gamma_defense,
            o.effectiveness,
            if o.target_met {
                ""
            } else {
                "  (target missed)"
            }
        );
    }

    let daily_premium: f64 = outcomes
        .iter()
        .map(|o| o.cost_with_mtd - o.cost_no_mtd)
        .sum();
    println!();
    println!("daily MTD premium: ${daily_premium:.0} — the 'insurance' cost of keeping");
    println!("stale-knowledge FDI attacks detectable around the clock.");
    Ok(())
}
