//! A day in the life of an MTD-defended grid operator (Figs. 10–11).
//!
//! Drives the hourly loop through the session API: `begin_day` arms the
//! trace and initializes the attacker's (one-hour-stale) knowledge,
//! then each `step_hour` re-dispatches for the hour's load, tunes the
//! smallest subspace-angle threshold achieving `η'(0.9) ≥ 0.9`, logs
//! the operational cost of the defense, and advances the stale-matrix
//! state the session owns. Uses reduced optimizer budgets so it
//! finishes in about a minute; the `fig10_11` bench binary runs the
//! full-budget version.
//!
//! Run with: `cargo run --release --example daily_operation`

use gridmtd::mtd::{MtdConfig, MtdSession, TimelineOptions};
use gridmtd::powergrid::cases;
use gridmtd::traces::nyiso_winter_weekday;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MtdConfig {
        n_attacks: 300,
        n_starts: 2,
        max_evals_per_start: 150,
        ..MtdConfig::default()
    };
    let mut session = MtdSession::builder(cases::case14()).config(cfg).build()?;

    println!("hour   load(MW)  cost_no_mtd  cost_mtd   +%     gamma  eta(0.9)");
    session.begin_day(&nyiso_winter_weekday(), &TimelineOptions::default())?;
    let mut daily_premium = 0.0;
    while session.hours_remaining() > 0 {
        let o = session.step_hour()?;
        daily_premium += o.cost_with_mtd - o.cost_no_mtd;
        println!(
            "{:02}:00  {:7.0}  {:10.0}  {:9.0}  {:5.2}  {:6.3}  {:7.3}{}",
            o.hour,
            o.total_load_mw,
            o.cost_no_mtd,
            o.cost_with_mtd,
            o.cost_increase_percent,
            o.gamma_defense,
            o.effectiveness,
            if o.target_met {
                ""
            } else {
                "  (target missed)"
            }
        );
    }

    println!();
    println!("daily MTD premium: ${daily_premium:.0} — the 'insurance' cost of keeping");
    println!("stale-knowledge FDI attacks detectable around the clock.");
    Ok(())
}
