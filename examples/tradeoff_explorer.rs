//! Explore the effectiveness-vs-cost frontier (Fig. 9) at any hour of
//! the day.
//!
//! Two sessions tell the story: one at the *previous* hour computes the
//! attacker's knowledge (the baseline-OPF reactances it eavesdropped),
//! and one at the chosen hour sweeps the γ-threshold grid against it.
//!
//! Usage: `cargo run --release --example tradeoff_explorer -- [hour]`
//! (default hour: 18, the evening peak).

use gridmtd::mtd::{MtdConfig, MtdSession};
use gridmtd::powergrid::cases;
use gridmtd::traces::nyiso_winter_weekday;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hour: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(18);

    let base = cases::case14();
    let trace = nyiso_winter_weekday();
    let cfg = MtdConfig {
        n_attacks: 300,
        n_starts: 3,
        max_evals_per_start: 200,
        ..MtdConfig::default()
    };

    let net = base.scale_loads(trace.scaling_factor(hour, base.total_load()));
    let prev = base.scale_loads(
        trace.scaling_factor(if hour == 0 { 23 } else { hour - 1 }, base.total_load()),
    );
    // Attacker knowledge: last hour's (cost-flat) OPF reactances, from a
    // sibling session at the stale hour's loads.
    let x_pre = MtdSession::builder(prev)
        .config(cfg.clone())
        .spread_x_pre()
        .build()?
        .baseline()?
        .x
        .clone();
    let session = MtdSession::builder(net).config(cfg).x_pre(x_pre).build()?;

    println!(
        "hour {hour:02}:00, load {:.0} MW — sweeping gamma thresholds",
        session.network().total_load()
    );
    let thresholds: Vec<f64> = (1..=8).map(|i| i as f64 * 0.05).collect();
    let curve = session.tradeoff_sweep(&thresholds, &[0.5, 0.9])?;

    println!("baseline (no MTD) cost: ${:.0}/h", curve.baseline_cost);
    println!();
    println!("gamma_th  gamma  eta(0.5)  eta(0.9)  cost increase");
    for p in &curve.points {
        println!(
            "{:8.2}  {:5.3}  {:8.3}  {:8.3}  {:12.2}%",
            p.gamma_threshold,
            p.gamma_achieved,
            p.eta(0.5).unwrap_or(0.0),
            p.eta(0.9).unwrap_or(0.0),
            p.cost_increase_percent
        );
    }
    println!();
    println!("pick the point where the marginal premium stops being worth the");
    println!("marginal detection coverage — that is the paper's cost-benefit call.");
    Ok(())
}
