//! Quickstart: detect a stale FDI attack with an MTD perturbation.
//!
//! Walks the full pipeline of the paper on the IEEE 14-bus system
//! through one [`MtdSession`] — the stateful handle that owns the
//! grid, the attacker's knowledge `H(x_pre)`, the attack ensemble and
//! every warm solver cache: evaluate the attacker's stealthy ensemble,
//! select an MTD reactance perturbation, and watch the previously
//! invisible attacks light up the bad-data detector.
//!
//! Run with: `cargo run --release --example quickstart`

use gridmtd::mtd::{MtdConfig, MtdSession};
use gridmtd::powergrid::cases;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One session owns the grid, the validated config, and every
    //    warm cache of the pipeline.
    let cfg = MtdConfig {
        n_attacks: 200,
        ..MtdConfig::default()
    };
    let session = MtdSession::builder(cases::case14())
        .config(cfg.clone())
        .build()?;
    println!(
        "IEEE 14-bus: {} buses, {} lines, OPF cost ${:.0}/h",
        session.network().n_buses(),
        session.network().n_branches(),
        session.opf_pre()?.cost
    );

    // 2. The attacker eavesdropped H(x_pre): the session's cached
    //    ensemble is crafted against exactly that knowledge. While the
    //    reactances stay put, every attack sails through the detector at
    //    the false-positive rate.
    let x_pre = session.x_pre().to_vec();
    let stale = session.evaluate(&x_pre)?;
    println!(
        "mean detection without MTD: {:.4} (the false-positive rate is {:.4})",
        stale.mean_detection(),
        cfg.alpha
    );

    // 3. The defender selects an MTD perturbation: minimize OPF cost
    //    subject to a subspace-angle threshold (problem (4)).
    let sel = session.select(0.2)?;
    println!(
        "selected MTD: gamma = {:.3} rad (threshold 0.2), OPF cost ${:.0}/h (+{:.2}%)",
        sel.gamma,
        sel.opf.cost,
        100.0 * (sel.opf.cost - session.opf_pre()?.cost).max(0.0) / session.opf_pre()?.cost,
    );

    // 4. The stale ensemble is now exposed.
    let exposed = session.evaluate(&sel.x_post)?;
    println!(
        "mean detection with MTD:    {:.4}  (η'(0.9) = {:.2})",
        exposed.mean_detection(),
        exposed.effectiveness(0.9)
    );
    Ok(())
}
