//! Quickstart: detect a stale FDI attack with an MTD perturbation.
//!
//! Walks the full pipeline of the paper on the IEEE 14-bus system:
//! build the grid, let an attacker learn `H`, apply an MTD reactance
//! perturbation, and watch the attacker's previously-stealthy attack
//! light up the bad-data detector.
//!
//! Run with: `cargo run --release --example quickstart`

use gridmtd::attack::AttackerKnowledge;
use gridmtd::estimation::{BadDataDetector, NoiseModel, StateEstimator};
use gridmtd::mtd::{selection, spa, MtdConfig};
use gridmtd::powergrid::{cases, dcpf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The grid and its nominal operating point.
    let net = cases::case14();
    let cfg = MtdConfig::default();
    let x_pre = net.nominal_reactances();
    let opf = gridmtd::opf::solve_opf(&net, &x_pre, &cfg.opf_options())?;
    println!(
        "IEEE 14-bus: {} buses, {} lines, OPF cost ${:.0}/h",
        net.n_buses(),
        net.n_branches(),
        opf.cost
    );

    // 2. The attacker eavesdrops and learns the measurement matrix.
    let h_pre = net.measurement_matrix(&x_pre)?;
    let attacker = AttackerKnowledge::learned(h_pre.clone(), 8); // learned at 8 AM
    let pf = dcpf::solve_dispatch(&net, &x_pre, &opf.dispatch)?;
    let z_nominal = pf.measurement_vector();
    let mut rng = StdRng::seed_from_u64(1);
    let attack = attacker
        .craft_random_set(&z_nominal, cfg.attack_ratio, 1, &mut rng)?
        .remove(0);

    // Without MTD the attack is invisible: detection probability = alpha.
    let noise = NoiseModel::uniform(z_nominal.len(), cfg.noise_sigma_mw);
    let bdd_pre = BadDataDetector::new(StateEstimator::new(h_pre.clone(), &noise)?, cfg.alpha);
    println!(
        "detection probability without MTD: {:.4} (the false-positive rate is {:.4})",
        bdd_pre.detection_probability(&attack.vector)?,
        cfg.alpha
    );

    // 3. The defender selects an MTD perturbation: minimize OPF cost
    //    subject to a subspace-angle threshold (problem (4)).
    let sel = selection::select_mtd(&net, &x_pre, 0.2, &cfg)?;
    let h_post = net.measurement_matrix(&sel.x_post)?;
    println!(
        "selected MTD: gamma = {:.3} rad (threshold 0.2), OPF cost ${:.0}/h (+{:.2}%)",
        spa::gamma(&h_pre, &h_post)?,
        sel.opf.cost,
        100.0 * (sel.opf.cost - opf.cost).max(0.0) / opf.cost,
    );

    // 4. The stale attack is now exposed.
    let bdd_post = BadDataDetector::new(StateEstimator::new(h_post, &noise)?, cfg.alpha);
    println!(
        "detection probability with MTD:    {:.4}",
        bdd_post.detection_probability(&attack.vector)?
    );
    Ok(())
}
