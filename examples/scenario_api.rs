//! Drive the declarative scenario engine from code instead of the CLI:
//! parse a spec (inline here; usually a `scenarios/*.toml` file), run
//! it, and consume the structured artifacts. Under the hood the engine
//! compiles the spec into typed `MtdSession` batch requests — the same
//! entry point the `gridmtd` binary uses.
//!
//! Run with: `cargo run --release --example scenario_api`

use gridmtd::scenario::{parse_spec, run_spec};

const SPEC: &str = r#"
# Same format as scenarios/*.toml — see docs/REPRODUCING.md.
[scenario]
name = "api_demo"
kind = "tradeoff"
description = "small in-code tradeoff sweep on the 4-bus example"

[grid]
case = "case4"

[config]
n_attacks = 60
n_starts = 1
max_evals_per_start = 80

[sweep]
gamma_thresholds = [0.02, 0.05, 0.1]
deltas = [0.5, 0.9]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = parse_spec(SPEC)?;
    println!(
        "spec `{}` ({} on {}): {}",
        spec.name,
        spec.sweep.kind(),
        spec.grid.case.name(),
        spec.description
    );

    // Deterministic: same spec, same bytes — the CLI writes exactly
    // this JSON/CSV to runs/<name>/.
    let run = run_spec(&spec)?;
    for line in &run.summary {
        println!("  {line}");
    }
    println!("\ncsv:\n{}", run.csv);

    // The canonical TOML echo round-trips, so specs can be generated
    // programmatically and checked in.
    let echoed = parse_spec(&spec.to_toml())?;
    assert_eq!(echoed, spec);
    println!("canonical spec echo round-trips OK");
    Ok(())
}
