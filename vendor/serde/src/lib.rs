//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The gridmtd workspace derives `Serialize`/`Deserialize` on its config
//! and result types but performs no actual (de)serialization anywhere in
//! the reproduction, so in this registry-less build environment the
//! derives expand to nothing. Swapping the real `serde` (with the
//! `derive` feature) back in requires only a manifest change — the call
//! sites are already written against the real API.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
