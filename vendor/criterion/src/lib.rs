//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the gridmtd bench targets use — [`Criterion`]
//! with the `sample_size`/`measurement_time`/`warm_up_time` builders,
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — measuring plain
//! wall-clock means instead of criterion's full statistical pipeline:
//!
//! * each benchmark warms up for `warm_up_time`, then runs timed batches
//!   until `measurement_time` elapses (at least `sample_size` batches) and
//!   reports the mean ns/iteration;
//! * `--test` on the command line (as passed by
//!   `cargo bench -- --test`) switches to smoke mode: every routine runs
//!   exactly once, untimed, so CI can keep the targets compiling and
//!   running cheaply;
//! * positional (non-flag) command-line arguments act as substring
//!   filters on benchmark ids, mirroring upstream criterion's
//!   `cargo bench -- <filter>`; non-matching benchmarks are skipped
//!   entirely — how CI measures only its regression-gated rows;
//! * setting `GRIDMTD_BENCH_JSON=<path>` appends one JSON object per
//!   benchmark (`{"bench":…,"mean_ns":…,"iters":…}`) to `<path>`, which is
//!   how the workspace snapshots `BENCH_seed.json`-style baselines.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] sizes its setup batches. The stand-in
/// always runs setup once per measured iteration, so the variants only
/// exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Benchmark driver handed to routines registered with
/// [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
    warm_up: Duration,
    measurement: Duration,
    min_samples: usize,
    /// (total duration, iterations) recorded by the last routine.
    measured: Option<(Duration, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    Smoke,
}

impl Bencher {
    /// Times `routine`, called back-to-back in batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up;
        let mut batch: u64 = 1;
        while Instant::now() < warm_deadline {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut samples = 0usize;
        while total < self.measurement || samples < self.min_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            samples += 1;
        }
        self.measured = Some((total, iters));
    }

    /// Times `routine` on fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement || (iters as usize) < self.min_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
    json_out: Option<std::path::PathBuf>,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            mode: Mode::Measure,
            json_out: None,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`--test` for smoke mode,
    /// positional args as id substring filters) and the
    /// `GRIDMTD_BENCH_JSON` snapshot path; called by [`criterion_main!`].
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.mode = Mode::Smoke;
            } else if !arg.starts_with('-') {
                self.filters.push(arg);
            }
        }
        self.json_out = std::env::var_os("GRIDMTD_BENCH_JSON").map(Into::into);
        self
    }

    /// Runs one benchmark and reports it. Skipped (not run, not
    /// reported) when filters are active and none matches `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|flt| id.contains(flt.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            mode: self.mode,
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            min_samples: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        let (total, iters) = bencher
            .measured
            .expect("benchmark routine never called Bencher::iter/iter_batched");
        self.report(id, total, iters);
        self
    }

    /// Opens a named group; group benchmark ids are `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn report(&self, id: &str, total: Duration, iters: u64) {
        if self.mode == Mode::Smoke {
            println!("{id}: smoke ok");
            return;
        }
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        println!("{id}: {mean_ns:.1} ns/iter ({iters} iters)");
        if let Some(path) = &self.json_out {
            let line = format!(
                "{{\"bench\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}}}\n",
                id.replace('\\', "\\\\").replace('"', "\\\""),
                mean_ns,
                iters
            );
            let write = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = write {
                eprintln!("warning: could not append to {}: {e}", path.display());
            }
        }
    }

    /// Upstream prints a closing summary; the stand-in has nothing left
    /// to do.
    pub fn final_summary(&mut self) {}
}

/// Group handle returned by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under this group's prefix.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (upstream finalizes reports here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("unit/smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("unit/measure", |b| b.iter(|| runs += 1));
        assert!(runs > 1);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filters: vec!["dc_opf/case30".into()],
            ..Criterion::default()
        };
        let mut matched = 0u64;
        let mut skipped = 0u64;
        c.bench_function("dc_opf/case30", |b| b.iter(|| matched += 1));
        c.bench_function("gamma/case14", |b| b.iter(|| skipped += 1));
        assert_eq!(matched, 1);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("unit/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
