//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest 1.x API the gridmtd test suites
//! use — [`strategy::Strategy`] with `prop_map`, numeric range and tuple
//! strategies, [`collection::vec`], [`test_runner::ProptestConfig`] and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros — on top
//! of a deterministic seeded RNG.
//!
//! Differences from upstream, deliberate for an offline environment:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; cases are deterministic per
//!   (test name, case index), so failures replay exactly.
//! * **No persistence files** (`proptest-regressions/`).
//!
//! Swapping the real crate back in requires only a manifest change.

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy producing `f(v)` for `v` drawn from `self`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of a fixed length, as returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    ///
    /// Upstream accepts any size range; the gridmtd suites only ever pass
    /// a fixed length, so that is all this stand-in supports.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration and RNG (subset of `proptest::test_runner`).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Seeds the RNG for one (test, case) pair. `salt` mixes in the
        /// test name so distinct properties see distinct streams.
        pub fn for_case(salt: u64, case: u64) -> Self {
            TestRng {
                rng: StdRng::seed_from_u64(
                    salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case),
                ),
            }
        }
    }

    /// Explicit test-case failure, as carried by upstream's
    /// `TestCaseError`. The stand-in's assertions panic instead, so this
    /// only exists to type test bodies that `return Ok(())` early.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    /// FNV-1a over a test name, used as the RNG salt.
    pub fn name_salt(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` deterministic samples and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let salt = $crate::test_runner::name_salt(stringify!($name));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(salt, case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Upstream bodies may `return Ok(())` early, so run the
                    // body inside a result-returning closure.
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("property {} failed on case {case}: {e:?}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Panicking analogue of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Panicking analogue of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => { assert_eq!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_eq!($lhs, $rhs, $($fmt)+) };
}

/// Panicking analogue of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => { assert_ne!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_ne!($lhs, $rhs, $($fmt)+) };
}

/// Analogue of `proptest::prop_assume!`: skips the current case when the
/// assumption fails (upstream re-draws; this stand-in just moves on).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        ((-1.0..1.0f64), (3usize..10)).prop_map(|(x, n)| (x * 2.0, n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_honour_bounds(x in -5.0..5.0f64, n in 1usize..4) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn mapped_tuples_compose((x, n) in pair()) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((3..10).contains(&n));
        }

        #[test]
        fn vec_strategy_has_requested_len(v in crate::collection::vec(0.0..1.0f64, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let salt = crate::test_runner::name_salt("t");
        let mut a = crate::test_runner::TestRng::for_case(salt, 3);
        let mut b = crate::test_runner::TestRng::for_case(salt, 3);
        let s = 0.0..1.0f64;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
