//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The gridmtd build environment has no registry access, so this vendored
//! crate provides the small slice of the `rand` 0.8 API the workspace
//! actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::gen_range`] over half-open and inclusive ranges of the
//!   primitive numeric types,
//! * [`Rng::gen_bool`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! reproduction needs (it never relied on the exact stream of upstream
//! `StdRng`, only on seeded determinism).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] exactly like upstream `rand`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be seeded from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a `f64` uniform on `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps the modulo bias negligible for the
                // spans used in this workspace (all far below 2^64).
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )+};
}

impl_int_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
