//! Tier-1 smoke suite: the invariants every future scale/perf PR must
//! keep intact. Each test exercises one load-bearing property of the
//! seed pipeline on the paper's benchmark systems (4-bus example of
//! Fig. 3, IEEE 14-bus, IEEE 30-bus).

use gridmtd::estimation::{BadDataDetector, NoiseModel, StateEstimator};
use gridmtd::linalg::Svd;
use gridmtd::opf::dcopf::{solve_opf_nominal, OpfOptions};
use gridmtd::powergrid::{cases, dcpf, Network};

fn benchmark_cases() -> Vec<Network> {
    vec![cases::case4(), cases::case14(), cases::case30()]
}

#[test]
fn benchmark_networks_load_and_are_consistent() {
    for net in benchmark_cases() {
        assert!(net.n_buses() >= 4, "{}: too few buses", net.name());
        assert!(net.is_connected(), "{}: disconnected", net.name());
        assert_eq!(net.n_states(), net.n_buses() - 1, "{}", net.name());
        assert_eq!(
            net.n_measurements(),
            2 * net.n_branches() + net.n_buses(),
            "{}: H = [D Aᵀ; −D Aᵀ; A D Aᵀ] row count",
            net.name()
        );
        assert!(
            net.nominal_reactances().iter().all(|&x| x > 0.0),
            "{}: non-positive reactance",
            net.name()
        );
        assert!(net.total_load() > 0.0, "{}", net.name());
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        assert!(
            cap >= net.total_load(),
            "{}: generation cannot cover load",
            net.name()
        );
    }
}

#[test]
fn measurement_matrices_have_full_column_rank() {
    for net in benchmark_cases() {
        let h = net
            .measurement_matrix(&net.nominal_reactances())
            .expect("nominal H");
        let rank = Svd::compute(&h).expect("SVD of H").rank();
        assert_eq!(rank, net.n_states(), "{}: rank-deficient H", net.name());
    }
}

#[test]
fn nominal_opf_respects_limits_and_balance() {
    for net in benchmark_cases() {
        let sol = solve_opf_nominal(&net, &OpfOptions::default()).expect("nominal OPF");
        let tol = 1e-6;
        for (l, (&flow, &limit)) in sol.flows.iter().zip(net.flow_limits().iter()).enumerate() {
            assert!(
                flow.abs() <= limit + tol,
                "{}: branch {l} flow {flow:.3} exceeds limit {limit:.3}",
                net.name()
            );
        }
        for (g, (&p, gen)) in sol.dispatch.iter().zip(net.gens().iter()).enumerate() {
            assert!(
                (-tol..=gen.pmax_mw + tol).contains(&p),
                "{}: generator {g} dispatch {p:.3} outside [0, {:.3}]",
                net.name(),
                gen.pmax_mw
            );
        }
        let gen_total: f64 = sol.dispatch.iter().sum();
        assert!(
            (gen_total - net.total_load()).abs() < 1e-6,
            "{}: dispatch does not balance load",
            net.name()
        );
        assert!(sol.cost > 0.0, "{}", net.name());
    }
}

#[test]
fn clean_measurements_pass_bdd_at_alpha_5_percent() {
    for net in benchmark_cases() {
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).expect("H");
        let sol = solve_opf_nominal(&net, &OpfOptions::default()).expect("nominal OPF");
        let pf = dcpf::solve_dispatch(&net, &x, &sol.dispatch).expect("power flow");
        let noise = NoiseModel::uniform(h.rows(), 0.1);
        let est = StateEstimator::new(h, &noise).expect("WLS estimator");
        let bdd = BadDataDetector::new(est, 0.05);
        let outcome = bdd.test(&pf.measurement_vector()).expect("BDD run");
        assert!(
            !outcome.alarm,
            "{}: clean measurements should pass the χ² BDD at α = 0.05 \
             (statistic {:.3} vs threshold {:.3})",
            net.name(),
            outcome.statistic,
            outcome.threshold
        );
    }
}
