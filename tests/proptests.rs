//! Cross-crate property-based tests on randomly generated grids.

use gridmtd::linalg::vector;
use gridmtd::mtd::{spa, theory};
use gridmtd::powergrid::cases::{synthetic, SyntheticConfig};
use gridmtd::powergrid::dcpf;
use proptest::prelude::*;
use std::f64::consts::FRAC_PI_2;

fn net_strategy() -> impl Strategy<Value = gridmtd::powergrid::Network> {
    (5usize..30, 0u64..1000).prop_map(|(n, seed)| {
        synthetic(
            &SyntheticConfig {
                n_buses: n,
                ..SyntheticConfig::default()
            },
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn measurement_matrix_has_full_column_rank(net in net_strategy()) {
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        let rank = gridmtd::linalg::Svd::compute(&h).unwrap().rank();
        prop_assert_eq!(rank, net.n_states());
    }

    #[test]
    fn power_flow_conserves_energy(net in net_strategy(), scale in 0.2..1.0f64) {
        // Dispatch all generators proportionally to cover scaled load.
        let total = net.total_load() * scale;
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        let dispatch: Vec<f64> = net.gens().iter().map(|g| g.pmax_mw / cap * total).collect();
        let net_scaled = net.scale_loads(scale);
        let pf = dcpf::solve_dispatch(&net_scaled, &net.nominal_reactances(), &dispatch).unwrap();
        // Injections sum to zero and per-bus flow balance holds.
        prop_assert!(pf.injections.iter().sum::<f64>().abs() < 1e-6);
        let mut balance = vec![0.0; net.n_buses()];
        for (l, br) in net.branches().iter().enumerate() {
            balance[br.from] += pf.flows[l];
            balance[br.to] -= pf.flows[l];
        }
        for (b, p) in balance.iter().zip(pf.injections.iter()) {
            prop_assert!((b - p).abs() < 1e-6);
        }
    }

    #[test]
    fn stealthy_attacks_are_undetectable_without_mtd(net in net_strategy(),
                                                     c_seed in 0u64..100) {
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        let c: Vec<f64> = (0..h.cols())
            .map(|i| ((c_seed as f64 + 1.0) * (i as f64 + 1.0) * 0.37).sin() * 0.01)
            .collect();
        let a = h.matvec(&c).unwrap();
        if vector::norm2(&a) > 1e-9 {
            prop_assert!(theory::is_undetectable(&h, &a).unwrap());
            prop_assert!(theory::noiseless_residual(&h, &a).unwrap() < 1e-6);
        }
    }

    #[test]
    fn gamma_is_well_behaved_under_random_perturbations(net in net_strategy(),
                                                        eta in 0.05..0.5f64) {
        let x0 = net.nominal_reactances();
        let h0 = net.measurement_matrix(&x0).unwrap();
        let mut x1 = x0.clone();
        for (k, l) in net.dfacts_branches().into_iter().enumerate() {
            x1[l] *= if k % 2 == 0 { 1.0 + eta } else { 1.0 - eta };
        }
        let h1 = net.measurement_matrix(&x1).unwrap();
        let g = spa::gamma(&h0, &h1).unwrap();
        prop_assert!((0.0..=FRAC_PI_2 + 1e-9).contains(&g));
        // Uniform scaling of all reactances leaves the space unchanged.
        let x_scaled: Vec<f64> = x0.iter().map(|v| v * (1.0 + eta)).collect();
        let h_scaled = net.measurement_matrix(&x_scaled).unwrap();
        prop_assert!(spa::gamma(&h0, &h_scaled).unwrap() < 1e-6);
    }

    #[test]
    fn undetectable_iff_residual_zero(net in net_strategy(), eta in 0.1..0.5f64) {
        let x0 = net.nominal_reactances();
        let h0 = net.measurement_matrix(&x0).unwrap();
        let dfacts = net.dfacts_branches();
        if dfacts.is_empty() {
            return Ok(());
        }
        let mut x1 = x0.clone();
        x1[dfacts[0]] *= 1.0 + eta;
        let h1 = net.measurement_matrix(&x1).unwrap();
        // Probe a handful of unit state offsets.
        for i in 0..h0.cols().min(5) {
            let mut c = vec![0.0; h0.cols()];
            c[i] = 1.0;
            let a = h0.matvec(&c).unwrap();
            let undetectable = theory::is_undetectable(&h1, &a).unwrap();
            let residual = theory::noiseless_residual(&h1, &a).unwrap();
            let relative = residual / vector::norm2(&a).max(1e-12);
            prop_assert_eq!(undetectable, relative < 1e-6,
                "rank test and residual disagree: rel={}", relative);
        }
    }
}
