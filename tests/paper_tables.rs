//! Regression tests pinning the 4-bus reproduction of the paper's
//! Tables I–III (the calibration targets of `DESIGN.md`).

use gridmtd::mtd::theory;
use gridmtd::opf::{solve_opf, solve_opf_nominal, OpfOptions};
use gridmtd::powergrid::cases;

#[test]
fn table2_pre_perturbation_operating_point() {
    let net = cases::case4();
    let sol = solve_opf_nominal(&net, &OpfOptions::default()).unwrap();
    let expected_flows = [126.56, 173.44, -43.44, -26.56];
    for (l, &e) in expected_flows.iter().enumerate() {
        assert!(
            (sol.flows[l] - e).abs() < 0.01,
            "flow {l}: {} vs {e}",
            sol.flows[l]
        );
    }
    assert!((sol.dispatch[0] - 350.0).abs() < 1e-6);
    assert!((sol.dispatch[1] - 150.0).abs() < 1e-6);
    assert!((sol.cost - 11_500.0).abs() < 1e-6);
}

#[test]
fn table3_post_perturbation_costs() {
    // Paper: costs 11626 / 11595 / 11514 / 11540 $ for dx1..dx4.
    // Calibration tolerance: within $25 and with the same ordering.
    let net = cases::case4();
    let x0 = net.nominal_reactances();
    let opts = OpfOptions::default();
    let paper = [11_626.0, 11_595.0, 11_514.0, 11_540.0];
    let mut costs = Vec::new();
    for l in 0..4 {
        let mut x = x0.clone();
        x[l] *= 1.2;
        let sol = solve_opf(&net, &x, &opts).unwrap();
        assert!(
            (sol.cost - paper[l]).abs() < 25.0,
            "dx{}: {} vs paper {}",
            l + 1,
            sol.cost,
            paper[l]
        );
        costs.push(sol.cost);
    }
    // Ordering: dx1 most expensive, dx3 cheapest.
    assert!(costs[0] > costs[1] && costs[1] > costs[3] && costs[3] > costs[2]);
    // And every perturbation costs more than the $11.5k baseline.
    for c in costs {
        assert!(c > 11_500.0);
    }
}

#[test]
fn table1_residual_pattern_and_magnitude() {
    let net = cases::case4();
    let x0 = net.nominal_reactances();
    let h = net.measurement_matrix(&x0).unwrap();
    // Per-unit attack vectors as in the paper (see the table1 binary).
    let scale = net.base_mva();
    let a1: Vec<f64> = h
        .matvec(&[1.0, 1.0, 1.0])
        .unwrap()
        .into_iter()
        .map(|v| v / scale)
        .collect();
    let a2: Vec<f64> = h
        .matvec(&[0.0, 0.0, 1.0])
        .unwrap()
        .into_iter()
        .map(|v| v / scale)
        .collect();

    let paper_r1 = [2.82, 2.87, 0.0, 0.0];
    let paper_r2 = [0.0, 0.0, 2.87, 2.82];
    for l in 0..4 {
        let mut x = x0.clone();
        x[l] *= 1.2;
        let h_post = net.measurement_matrix(&x).unwrap();
        let r1 = theory::noiseless_residual(&h_post, &a1).unwrap();
        let r2 = theory::noiseless_residual(&h_post, &a2).unwrap();
        if paper_r1[l] == 0.0 {
            assert!(r1 < 1e-8, "A1 vs dx{}: {r1}", l + 1);
        } else {
            assert!((r1 - paper_r1[l]).abs() < 0.1, "A1 vs dx{}: {r1}", l + 1);
        }
        if paper_r2[l] == 0.0 {
            assert!(r2 < 1e-8, "A2 vs dx{}: {r2}", l + 1);
        } else {
            assert!((r2 - paper_r2[l]).abs() < 0.12, "A2 vs dx{}: {r2}", l + 1);
        }
    }
}
