//! End-to-end smoke tests for the `gridmtd` CLI binary: the scenario
//! path a user actually types, from `gridmtd run <spec.toml>` to the
//! files on disk. Deeper engine behavior (goldens, error wording) is
//! pinned in `crates/scenario/tests/golden.rs`; this file checks the
//! binary's wiring — argument handling, exit codes, and that the CLI
//! writes exactly what the library produces.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("facade manifest sits one level below the repo root")
        .to_path_buf()
}

fn gridmtd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gridmtd"));
    cmd.current_dir(repo_root());
    cmd
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridmtd-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn run_smoke_scenario_writes_the_run_directory() {
    let out = temp_out("run");
    let output = gridmtd()
        .args(["run", "scenarios/smoke_case4.toml", "--out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("ran scenario `smoke_case4`"), "{stdout}");

    // The CLI writes exactly what the library computes for this spec —
    // the same bytes the golden test pins.
    let spec = gridmtd::scenario::parse_spec(
        &fs::read_to_string(repo_root().join("scenarios/smoke_case4.toml")).unwrap(),
    )
    .unwrap();
    let expected = gridmtd::scenario::run_spec(&spec).unwrap();
    let run_dir = out.join("smoke_case4");
    assert_eq!(
        fs::read_to_string(run_dir.join("result.json")).unwrap(),
        expected.json
    );
    assert_eq!(
        fs::read_to_string(run_dir.join("result.csv")).unwrap(),
        expected.csv
    );
    // The canonical spec echo round-trips to the same spec.
    let echoed =
        gridmtd::scenario::parse_spec(&fs::read_to_string(run_dir.join("spec.toml")).unwrap())
            .unwrap();
    assert_eq!(echoed, spec);
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn list_and_validate_cover_the_scenario_library() {
    let output = gridmtd().arg("list").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in [
        "smoke_case4.toml",
        "tradeoff_case14.toml",
        "timeline_case14.toml",
        "learning_case14.toml",
    ] {
        assert!(
            stdout.contains(name),
            "list output missing {name}: {stdout}"
        );
    }

    let specs: Vec<String> = fs::read_dir(repo_root().join("scenarios"))
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| format!("scenarios/{}", e.file_name().to_string_lossy()))
        .filter(|n| n.ends_with(".toml"))
        .collect();
    assert!(specs.len() >= 6);
    let output = gridmtd()
        .arg("validate")
        .args(&specs)
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn malformed_spec_fails_with_a_useful_message_and_nonzero_exit() {
    let out = temp_out("bad");
    fs::create_dir_all(&out).unwrap();
    let bad = out.join("bad.toml");
    fs::write(
        &bad,
        "[scenario]\nname = \"bad\"\nkind = \"tradeoff\"\n\n[grid]\ncase = \"case4\"\n\
         \n[sweep]\ngamma_thresholds = [0.1]\ndeltas = [0.5]\nsseeds = [1]\n",
    )
    .unwrap();
    let output = gridmtd()
        .arg("validate")
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    // The typo (`sseeds` for `seeds`) is named with its location.
    assert!(stderr.contains("sweep.sseeds"), "{stderr}");
    assert!(stderr.contains("line 11"), "{stderr}");
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn usage_errors_exit_with_code_two() {
    let output = gridmtd().output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let output = gridmtd().arg("frobnicate").output().expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
}
