//! End-to-end integration: attacker learns the grid, defender perturbs
//! it, detection follows the paper's theory — across every crate of the
//! workspace.

use gridmtd::attack::AttackerKnowledge;
use gridmtd::estimation::{BadDataDetector, NoiseModel, StateEstimator};
use gridmtd::mtd::{effectiveness, selection, spa, theory, MtdConfig};
use gridmtd::powergrid::{cases, dcpf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_cfg() -> MtdConfig {
    MtdConfig {
        n_attacks: 120,
        n_starts: 2,
        max_evals_per_start: 120,
        ..MtdConfig::default()
    }
}

#[test]
fn stale_attacker_is_defeated_fresh_attacker_is_not() {
    let net = cases::case14();
    let cfg = fast_cfg();
    let x_pre = net.nominal_reactances();
    let h_pre = net.measurement_matrix(&x_pre).unwrap();

    // Defender selects an effective perturbation.
    let sel = selection::select_mtd(&net, &x_pre, 0.2, &cfg).unwrap();
    let h_post = net.measurement_matrix(&sel.x_post).unwrap();
    let noise = NoiseModel::uniform(h_post.rows(), cfg.noise_sigma_mw);
    let bdd = BadDataDetector::new(StateEstimator::new(h_post, &noise).unwrap(), cfg.alpha);

    // Measurements the attacker scaled against.
    let opf = gridmtd::opf::solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();
    let z = dcpf::solve_dispatch(&net, &x_pre, &opf.dispatch)
        .unwrap()
        .measurement_vector();

    let mut rng = StdRng::seed_from_u64(3);
    let stale = AttackerKnowledge::learned(h_pre, 0);
    let stale_attacks = stale
        .craft_random_set(&z, cfg.attack_ratio, 40, &mut rng)
        .unwrap();
    let stale_detected = stale_attacks
        .iter()
        .filter(|a| bdd.detection_probability(&a.vector).unwrap() > 0.5)
        .count();
    assert!(
        stale_detected > 20,
        "MTD should expose most stale attacks: {stale_detected}/40"
    );

    // An attacker who re-learned the post-MTD matrix stays stealthy —
    // why the perturbation must keep moving.
    let fresh = AttackerKnowledge::learned(net.measurement_matrix(&sel.x_post).unwrap(), 1);
    let fresh_attacks = fresh
        .craft_random_set(&z, cfg.attack_ratio, 10, &mut rng)
        .unwrap();
    for a in &fresh_attacks {
        let pd = bdd.detection_probability(&a.vector).unwrap();
        assert!((pd - cfg.alpha).abs() < 1e-6, "fresh attack PD {pd}");
    }
}

#[test]
fn proposition1_agrees_with_detection_probability() {
    // Rank-test undetectability (Prop. 1) must coincide with PD == alpha.
    let net = cases::case4();
    let cfg = fast_cfg();
    let x0 = net.nominal_reactances();
    let h = net.measurement_matrix(&x0).unwrap();
    let mut x_post = x0.clone();
    x_post[0] *= 1.3;
    let h_post = net.measurement_matrix(&x_post).unwrap();
    let noise = NoiseModel::uniform(h.rows(), cfg.noise_sigma_mw);
    let bdd = BadDataDetector::new(
        StateEstimator::new(h_post.clone(), &noise).unwrap(),
        cfg.alpha,
    );

    for c in [
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [1.0, 1.0, 1.0],
    ] {
        let a = h.matvec(&c).unwrap();
        let undetectable = theory::is_undetectable(&h_post, &a).unwrap();
        let pd = bdd.detection_probability(&a).unwrap();
        if undetectable {
            assert!(
                (pd - cfg.alpha).abs() < 1e-6,
                "undetectable attack must have PD = alpha, got {pd}"
            );
        } else {
            assert!(
                pd > cfg.alpha * 2.0,
                "detectable attack must beat alpha: {pd}"
            );
        }
    }
}

#[test]
fn gamma_zero_perturbation_is_useless_regardless_of_size() {
    // Scaling ALL reactances uniformly is a huge physical change but
    // leaves Col(H) intact: gamma = 0 and zero detection (the paper's
    // Case 2 extreme).
    let net = cases::case14();
    let cfg = fast_cfg();
    let x_pre = net.nominal_reactances();
    let x_post: Vec<f64> = x_pre.iter().map(|v| v * 1.45).collect();
    let eval = effectiveness::evaluate_mtd(&net, &x_pre, &x_post, &cfg).unwrap();
    assert!(eval.gamma < 1e-6);
    assert_eq!(eval.effectiveness(0.5), 0.0);
}

#[test]
fn selected_mtd_beats_every_random_trial_on_guarantee() {
    let net = cases::case14();
    let cfg = fast_cfg();
    let x_pre = net.nominal_reactances();
    let opf = gridmtd::opf::solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();
    let attacks = effectiveness::build_attack_set(&net, &x_pre, &opf.dispatch, &cfg).unwrap();

    let sel = selection::select_mtd(&net, &x_pre, 0.2, &cfg).unwrap();
    let targeted =
        effectiveness::evaluate_with_attacks(&net, &x_pre, &sel.x_post, &attacks, &cfg).unwrap();

    // Random 2%-style perturbations (prior work's strategy).
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..5 {
        let x_rand = selection::random_perturbation(&net, &x_pre, 0.02, &mut rng).unwrap();
        let rand_eval =
            effectiveness::evaluate_with_attacks(&net, &x_pre, &x_rand, &attacks, &cfg).unwrap();
        assert!(
            targeted.effectiveness(0.9) > rand_eval.effectiveness(0.9),
            "targeted {} <= random {}",
            targeted.effectiveness(0.9),
            rand_eval.effectiveness(0.9)
        );
    }
}

#[test]
fn spa_approximation_of_section6_holds_under_load_drift() {
    // gamma(H_t, H'_t') ~ gamma(H_t', H'_t') when loads drift between
    // hours (the matrices differ only through re-optimized reactances).
    let net = cases::case14();
    let cfg = fast_cfg();
    let x_nominal = net.nominal_reactances();
    let net_hour1 = net.scale_loads(0.8);
    let net_hour2 = net.scale_loads(0.83);

    let (x_t, _) = selection::baseline_opf(&net_hour1, &x_nominal, &cfg).unwrap();
    let (x_t1, _) = selection::baseline_opf(&net_hour2, &x_t, &cfg).unwrap();
    let sel = selection::select_mtd(&net_hour2, &x_t, 0.2, &cfg).unwrap();

    let h_t = net.measurement_matrix(&x_t).unwrap();
    let h_t1 = net.measurement_matrix(&x_t1).unwrap();
    let h_post = net.measurement_matrix(&sel.x_post).unwrap();

    let g_defense = spa::gamma(&h_t, &h_post).unwrap();
    let g_current = spa::gamma(&h_t1, &h_post).unwrap();
    let g_drift = spa::gamma(&h_t, &h_t1).unwrap();
    assert!(g_drift < 0.05, "drift should be tiny: {g_drift}");
    assert!(
        (g_defense - g_current).abs() < 0.1,
        "{g_defense} vs {g_current}"
    );
}
