//! Cross-crate consistency checks: the same physics must emerge whether
//! computed through the power-flow, OPF, estimation or attack crates.

use gridmtd::estimation::{BadDataDetector, NoiseModel, StateEstimator};
use gridmtd::linalg::vector;
use gridmtd::opf::{solve_opf, OpfOptions};
use gridmtd::powergrid::{cases, dcpf, MeasurementLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn opf_flows_satisfy_power_flow_physics() {
    for net in [cases::case4(), cases::case14(), cases::case30()] {
        let x = net.nominal_reactances();
        let sol = solve_opf(&net, &x, &OpfOptions::default()).unwrap();
        let pf = dcpf::solve_dispatch(&net, &x, &sol.dispatch).unwrap();
        assert!(
            vector::approx_eq(&sol.flows, &pf.flows, 1e-6),
            "{}: OPF flows disagree with DC-PF",
            net.name()
        );
        // Dispatch balances load exactly.
        let total: f64 = sol.dispatch.iter().sum();
        assert!((total - net.total_load()).abs() < 1e-5, "{}", net.name());
    }
}

#[test]
fn measurement_layout_matches_vector_construction() {
    let net = cases::case14();
    let x = net.nominal_reactances();
    let dispatch = [150.0, 40.0, 20.0, 30.0, 19.0];
    let pf = dcpf::solve_dispatch(&net, &x, &dispatch).unwrap();
    let z = pf.measurement_vector();
    let layout = MeasurementLayout::for_network(&net);
    for l in 0..net.n_branches() {
        assert_eq!(z[layout.forward_flow(l)], pf.flows[l]);
        assert_eq!(z[layout.reverse_flow(l)], -pf.flows[l]);
    }
    for i in 0..net.n_buses() {
        assert!((z[layout.injection(i)] - pf.injections[i]).abs() < 1e-12);
    }
}

#[test]
fn estimator_recovers_state_through_noise() {
    let net = cases::case30();
    let x = net.nominal_reactances();
    let sol = solve_opf(&net, &x, &OpfOptions::default()).unwrap();
    let pf = dcpf::solve_dispatch(&net, &x, &sol.dispatch).unwrap();
    let z_true = pf.measurement_vector();
    let h = net.measurement_matrix(&x).unwrap();
    let noise = NoiseModel::uniform(h.rows(), 0.2);
    let est = StateEstimator::new(h, &noise).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let z = noise.corrupt(&z_true, &mut rng);
    let theta_hat = est.estimate(&z).unwrap();
    let theta_true: Vec<f64> = pf
        .theta
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| (i != net.slack()).then_some(t))
        .collect();
    // With 112 measurements over 29 states, noise averages down hard.
    for (a, b) in theta_hat.iter().zip(theta_true.iter()) {
        assert!((a - b).abs() < 2e-3, "state error {a} vs {b}");
    }
}

#[test]
fn bdd_false_positive_rate_matches_alpha_cross_crate() {
    let net = cases::case4();
    let x = net.nominal_reactances();
    let sol = solve_opf(&net, &x, &OpfOptions::default()).unwrap();
    let pf = dcpf::solve_dispatch(&net, &x, &sol.dispatch).unwrap();
    let z_true = pf.measurement_vector();
    let h = net.measurement_matrix(&x).unwrap();
    let noise = NoiseModel::uniform(h.rows(), 0.5);
    let bdd = BadDataDetector::new(StateEstimator::new(h, &noise).unwrap(), 0.02);

    let mut rng = StdRng::seed_from_u64(77);
    let trials = 30_000;
    let mut alarms = 0;
    for _ in 0..trials {
        if bdd.test(&noise.corrupt(&z_true, &mut rng)).unwrap().alarm {
            alarms += 1;
        }
    }
    let fp = alarms as f64 / trials as f64;
    assert!((fp - 0.02).abs() < 0.005, "fp = {fp}");
}

#[test]
fn per_unit_and_mw_measurement_matrices_have_identical_geometry() {
    // Column-space geometry (and hence every MTD metric) must be
    // invariant to the MW-vs-per-unit scaling convention.
    let net = cases::case14();
    let x = net.nominal_reactances();
    let h_mw = net.measurement_matrix(&x).unwrap();
    let h_pu = h_mw.scale(1.0 / net.base_mva());
    let mut x2 = x.clone();
    for l in net.dfacts_branches() {
        x2[l] *= 1.35;
    }
    let h2_mw = net.measurement_matrix(&x2).unwrap();
    let h2_pu = h2_mw.scale(1.0 / net.base_mva());
    let g_mw = gridmtd::mtd::spa::gamma(&h_mw, &h2_mw).unwrap();
    let g_pu = gridmtd::mtd::spa::gamma(&h_pu, &h2_pu).unwrap();
    assert!((g_mw - g_pu).abs() < 1e-10);
}
